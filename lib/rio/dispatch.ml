(** The dispatcher: Figure 1 of the paper.

    {v
    start → basic block builder → (trace selector) → code cache
              ↑                                        |
              └──── context switch ←── exit stub ←─────┘
                    (or stay in cache: direct link / indirect lookup)
    v}

    One dispatcher drives each application thread; code caches and all
    dispatch state are thread-private (paper §2).

    This module is only the dispatch loop itself: block building lives
    in {!Blockbuild}, trace selection in {!Trace}, and the
    indirect-branch lookup in {!Ibl}.  The dispatcher's safe points do
    the cross-cutting work — signal delivery, fault injection and
    audit, pending full flushes, and (under the FIFO policy) the
    fallback when incremental eviction cannot make room.

    The hot path (exit → lookup → re-enter) is engineered to be
    allocation-free on the host: fragment lookups are single probes of
    the unified open-addressing {!Fragindex}, and trap tokens resolve
    through a flat exit array. *)

open Isa
open Types
module FI = Fragindex

(* ------------------------------------------------------------------ *)
(* Safe-point services                                                *)
(* ------------------------------------------------------------------ *)

(* Push a value on the application stack of [ts]'s thread. *)
let push_app (rt : runtime) (ts : thread_state) v =
  let t = ts.thread in
  let sp = (Vm.Machine.get_reg t Reg.Esp - 4) land 0xFFFF_FFFF in
  Vm.Machine.set_reg t Reg.Esp sp;
  Vm.Memory.write_u32 (Vm.Machine.mem rt.machine) sp v

(* Deliver one pending signal, if any, at this safe point: push the
   interrupted application pc and redirect to the handler (all in app
   terms; the handler's code itself runs out of the code cache).
   Handlers outside application space are runtime damage (S34) — they
   are dropped, never delivered. *)
let rec deliver_signals (rt : runtime) (ts : thread_state) =
  match ts.thread.Vm.Machine.pending_signals with
  | [] -> ()
  | h :: rest ->
      ts.thread.Vm.Machine.pending_signals <- rest;
      if not (is_app_addr h) then begin
        rt.stats.Stats.spurious_signals_dropped <-
          rt.stats.Stats.spurious_signals_dropped + 1;
        log_flow rt "drop spurious signal -> 0x%x" h;
        deliver_signals rt ts
      end
      else begin
        push_app rt ts ts.next_tag;
        ts.next_tag <- h;
        rt.stats.Stats.signals_delivered <- rt.stats.Stats.signals_delivered + 1;
        log_flow rt "deliver signal -> 0x%x" h
      end

(* ------------------------------------------------------------------ *)
(* Fragment lookup                                                    *)
(* ------------------------------------------------------------------ *)

(* Look up (or create) the fragment to run for [tag] outside trace
   generation, honouring trace-head counters.  One index probe serves
   the trace lookup, the bb lookup, and the head-counter bump. *)
let fragment_for_normal (rt : runtime) (ts : thread_state) tag : fragment =
  let e = FI.ensure ts.index tag in
  match e.FI.trace with
  | Some f ->
      log_flow rt "enter trace 0x%x" tag;
      f
  | None ->
      let frag =
        match e.FI.bb with
        | Some f -> f
        | None -> Blockbuild.build_bb rt ts tag
      in
      if (e.FI.head >= 0 || e.FI.marked) && rt.opts.Options.enable_traces then begin
        let c = 1 + (if e.FI.head >= 0 then e.FI.head else 0) in
        (* stamp the counter's first hit: build time divides the elapsed
           cycles by the count to tell tight-loop heads from heads that
           merely accumulated hits over the whole run *)
        if c = 1 then e.FI.head_cycles <- Vm.Machine.cycles rt.machine;
        e.FI.head <- c;
        if c >= rt.opts.Options.trace_threshold && ts.tracegen = None then begin
          Trace.start_tracegen rt ts tag;
          match Trace.tracegen_step rt ts ~next:tag with
          | Some f -> f
          | None -> frag
        end
        else frag
      end
      else frag

(* Full dispatch: trace generation first, then normal lookup.  Signal
   delivery happens once per safe point in the quantum loop, before
   this is called. *)
let rec fragment_for (rt : runtime) (ts : thread_state) : fragment =
  let tag = ts.next_tag in
  match ts.tracegen with
  | Some _ -> (
      match Trace.tracegen_step rt ts ~next:tag with
      | Some frag -> frag
      | None ->
          (* trace was finalized; dispatch [tag] normally (it may even
             start another trace) *)
          fragment_for rt ts)
  | None -> fragment_for_normal rt ts tag

(* ------------------------------------------------------------------ *)
(* Recovery ladder (S34)                                              *)
(* ------------------------------------------------------------------ *)

(** Graceful degradation for a damaged [tag], escalating one rung per
    detection: re-emit the fragment → flush every fragment built from
    its source ranges → request flush-the-world → demote the tag to
    permanent pure emulation.  Each rung strictly reduces how much the
    bad state can recur, so retries are bounded. *)
let recover_tag (rt : runtime) (ts : thread_state) ~tag ~(reason : string) :
    unit =
  rt.stats.Stats.faults_detected <- rt.stats.Stats.faults_detected + 1;
  let rung = Option.value (Hashtbl.find_opt rt.recover_attempts tag) ~default:0 in
  Hashtbl.replace rt.recover_attempts tag (rung + 1);
  let frags_of_tag () =
    match FI.find ts.index tag with
    | None -> []
    | Some e ->
        (match e.FI.trace with Some f -> [ f ] | None -> [])
        @ (match e.FI.bb with Some f -> [ f ] | None -> [])
  in
  let delete_tag () =
    List.iter
      (fun f -> if not f.deleted then Emit.delete_fragment rt ts f)
      (frags_of_tag ())
  in
  match rung with
  | 0 ->
      rt.stats.Stats.recover_reemit <- rt.stats.Stats.recover_reemit + 1;
      log_flow rt "recover 0x%x [re-emit]: %s" tag reason;
      delete_tag ()
  | 1 ->
      rt.stats.Stats.recover_flush_frag <- rt.stats.Stats.recover_flush_frag + 1;
      log_flow rt "recover 0x%x [flush-fragment]: %s" tag reason;
      let ranges =
        match List.concat_map (fun f -> f.src_ranges) (frags_of_tag ()) with
        | [] -> [ (tag, tag + 1) ]
        | rs -> rs
      in
      ignore (Emit.flush_ranges rt ts ranges)
  | 2 ->
      rt.stats.Stats.recover_flush_world <- rt.stats.Stats.recover_flush_world + 1;
      log_flow rt "recover 0x%x [flush-world]: %s" tag reason;
      delete_tag ();
      (* the full flush waits for the globally safe point the quantum
         loop already honours for capacity flushes *)
      rt.flush_pending <- true
  | _ ->
      rt.stats.Stats.recover_emulate <- rt.stats.Stats.recover_emulate + 1;
      log_flow rt "recover 0x%x [emulate-only]: %s" tag reason;
      delete_tag ();
      Hashtbl.replace rt.emulate_only tag ()

(* Run the auditor and heal every violation it reports, escalating the
   offender's ladder rung on each pass.  Deletion removes the offender
   from the audited set, so this converges; the iteration bound is a
   backstop only. *)
let audit_and_heal (rt : runtime) : unit =
  let rec go n =
    if n < 16 then
      match Audit.run rt with
      | Ok () -> ()
      | Error (f, msg) ->
          (match
             List.find_opt (fun ts -> ts.ts_tid = f.f_tid) rt.thread_states
           with
          | Some fts -> recover_tag rt fts ~tag:f.tag ~reason:msg
          | None ->
              rt.stats.Stats.faults_detected <-
                rt.stats.Stats.faults_detected + 1;
              rt.stats.Stats.recover_flush_world <-
                rt.stats.Stats.recover_flush_world + 1;
              rt.flush_pending <- true);
          go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Exit handling and the per-thread quantum loop                      *)
(* ------------------------------------------------------------------ *)

type quantum_result = Q_budget | Q_thread_done | Q_fault of string | Q_deadline

(* Per-request watchdog poll (pool supervision, DESIGN.md §6.6).  The
   dispatcher is a safe point: no thread state is mid-update, so a
   preemption here leaves the instance resettable for reuse. *)
let watchdog_fired (rt : runtime) : bool =
  match rt.watchdog with None -> false | Some probe -> probe ()

(* Handle a direct exit: set next_tag, apply head heuristics, and link
   the exit to its target fragment when allowed.  One index probe
   serves the head heuristic and the link target lookup. *)
let handle_direct_exit (rt : runtime) (ts : thread_state) (e : exit_) =
  let target = e.target_tag in
  ts.next_tag <- target;
  let owner = match e.e_owner with Some f -> f | None -> rio_error "orphan exit" in
  (* speculation profiling / guard accounting (-O3, DESIGN.md §6.7) *)
  let is_guard =
    rt.opts.Options.opt_level >= 3
    && (not owner.deleted)
    &&
    match owner.kind with
    | Bb ->
        (* conditional exits of basic blocks feed the direction profile
           of their site; traps here are rare once linked, but exits
           targeting trace heads never link, which is exactly where the
           trace builder needs direction data *)
        if e.branch_is_cond then FI.record_successor ts.index owner.tag target;
        false
    | Trace -> (
        match guard_of_exit owner e.exit_id with
        | Some g ->
            g.g_violations <- g.g_violations + 1;
            rt.stats.Stats.spec_violations <- rt.stats.Stats.spec_violations + 1;
            (* burst accounting: only back-to-back misses spend the
               budget; isolated misses keep resetting the count *)
            let now = Vm.Machine.cycles rt.machine in
            if now - g.g_last_violation <= spec_burst_window then
              g.g_burst <- g.g_burst + 1
            else g.g_burst <- 1;
            g.g_last_violation <- now;
            log_flow rt "guard violated (const) trace 0x%x site 0x%x burst %d"
              owner.tag g.g_site g.g_burst;
            (* the budget is checked at the violation itself: a
               self-looping trace may never re-enter through the
               dispatcher where deferred re-optimization polls *)
            if g.g_burst >= rt.opts.Options.spec_max_violations then
              ignore (Opt.despeculate rt ts owner g);
            true
        | None -> false)
  in
  let te = FI.ensure ts.index target in
  (* backward direct branches identify loop heads (Dynamo's heuristic) *)
  if
    rt.opts.Options.enable_traces
    && owner.kind = Bb
    && target <= owner.tag
    && te.FI.trace = None
  then Trace.make_head_entry rt te;
  (* lazy linking: once the target fragment exists, patch the branch.
     Guard exits are never linked — each firing must keep trapping so
     violations are counted until the despeculation budget is hit. *)
  if
    rt.opts.Options.link_direct
    && ts.tracegen = None
    && (not owner.deleted)
    && (not is_guard)
    && e.linked = None
  then begin
    let target_frag =
      match te.FI.trace with
      | Some f -> Some f
      | None -> (
          match te.FI.bb with
          | Some f when te.FI.head < 0 && not te.FI.marked -> Some f
          | _ -> None)
    in
    match target_frag with
    | Some f when not f.deleted -> Emit.link rt e f
    | _ -> ()
  end

(* Run one scheduling quantum of [ts]'s thread. *)
let run_quantum (rt : runtime) (ts : thread_state) : quantum_result =
  let m = rt.machine in
  let t = ts.thread in
  let deadline = Vm.Machine.cycles m + rt.opts.Options.quantum in
  let budget () = deadline - Vm.Machine.cycles m in
  (* returns true to continue the quantum *)
  let rec from_dispatcher () =
    ts.in_cache <- false;
    if
      rt.flush_pending
      && List.for_all (fun o -> not o.in_cache) rt.thread_states
      && ts.tracegen = None
    then begin
      Emit.flush_all rt;
      charge rt rt.opts.Options.costs.Options.context_switch;
      log_flow rt "cache flush (capacity)"
    end;
    if budget () <= 0 then Q_budget
    else if watchdog_fired rt then Q_deadline
    else begin
      rt.stats.Stats.context_switches <- rt.stats.Stats.context_switches + 1;
      charge rt rt.opts.Options.costs.Options.context_switch;
      (* safe point: no thread state is mid-update and this thread is
         out of the cache — inject faults here, and audit right after
         any injection (plus on the configured period) so damage is
         healed before the cache is re-entered *)
      let injected = Faultinject.tick rt ts in
      if
        injected
        || (rt.opts.Options.audit_period > 0
            && rt.stats.Stats.context_switches mod rt.opts.Options.audit_period
               = 0)
      then audit_and_heal rt;
      log_flow rt "dispatch 0x%x" ts.next_tag;
      dispatch_next ()
    end
  and dispatch_next () =
    deliver_signals rt ts;
    if Hashtbl.mem rt.emulate_only ts.next_tag then begin
      (match ts.tracegen with
       | None -> ()
       | Some tg ->
           (* close out (or discard) the trace before leaving cache
              execution: its next block will never be a fragment *)
           if tg.tg_pending = P_start then Trace.abort_tracegen rt ts
           else ignore (Trace.finalize_trace rt ts tg));
      emulate_block ()
    end
    else
      match fragment_for rt ts with
      | frag -> enter frag
      | exception Instr.Bad_raw_bits { addr; msg } ->
          (* undecodable raw bits surfaced while building a fragment:
             heal whatever cache state fed them and retry (the ladder
             bounds the retries, ending in pure emulation) *)
          Trace.abort_tracegen rt ts;
          recover_tag rt ts ~tag:ts.next_tag
            ~reason:(Printf.sprintf "bad raw bits at 0x%x: %s" addr msg);
          from_dispatcher ()
      | exception Emit.No_room retry ->
          (* incremental eviction could not host the new basic block *)
          Trace.abort_tracegen rt ts;
          if retry then begin
            (* pinned fragments hold the region: fall back to
               flush-the-world once every thread is out of the cache.
               Ending the quantum lets the pinned threads run and exit;
               the charge keeps simulated time advancing. *)
            rt.flush_pending <- true;
            rt.stats.Stats.full_flush_fallbacks <-
              rt.stats.Stats.full_flush_fallbacks + 1;
            charge rt rt.opts.Options.costs.Options.context_switch;
            log_flow rt "no room for bb 0x%x: full flush requested" ts.next_tag;
            Q_budget
          end
          else
            (* an empty region cannot fit this block at all (option
               validation makes this unreachable for sane capacities) *)
            raise Emit.Cache_full
  and emulate_block () =
    (* ladder rung 4: this tag runs by pure interpretation, forever *)
    rt.stats.Stats.blocks_emulated <- rt.stats.Stats.blocks_emulated + 1;
    log_flow rt "emulate 0x%x" ts.next_tag;
    t.Vm.Machine.pc <- ts.next_tag;
    step_emulated ()
  and step_emulated () =
    if budget () <= 0 then begin
      ts.next_tag <- t.Vm.Machine.pc;
      Q_budget
    end
    else begin
      let pc0 = t.Vm.Machine.pc in
      let was_cti =
        match Decode.opcode_eflags (Vm.Memory.fetch (Vm.Machine.mem m)) pc0 with
        | Ok (op, _) -> Opcode.is_cti op
        | Error _ -> false
      in
      (* a 1-cycle budget interprets exactly one instruction *)
      match Vm.Interp.run m t ~budget:1 ~emulate:true with
      | Vm.Interp.Budget ->
          if was_cti then begin
            (* block over: back to the dispatcher with the new tag *)
            ts.next_tag <- t.Vm.Machine.pc;
            from_dispatcher ()
          end
          else step_emulated ()
      | Vm.Interp.Halted ->
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f -> Q_fault f
      | Vm.Interp.Smc _ ->
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush (emulated): %d fragments" (List.length flushed);
          step_emulated ()
      | Vm.Interp.Signal _ ->
          (* interception keeps signals pending for our safe points *)
          step_emulated ()
      | Vm.Interp.Ccall _ | Vm.Interp.Trap _ ->
          Q_fault
            (Printf.sprintf
               "emulated application code reached a runtime construct at 0x%x"
               pc0)
    end
  and enter (frag : fragment) =
    (* hot-trace re-optimization fires here, covering both dispatcher
       entries and IBL hits; ts.in_cache is still false, so the old
       body is unpinned while its replacement is emitted *)
    let frag = Opt.maybe_reoptimize rt ts frag in
    (match frag.kind with
     | Bb -> rt.stats.Stats.enters_bb <- rt.stats.Stats.enters_bb + 1
     | Trace -> rt.stats.Stats.enters_trace <- rt.stats.Stats.enters_trace + 1);
    t.Vm.Machine.pc <- frag.entry;
    resume ()
  and resume () =
    ts.in_cache <- true;
    if budget () <= 0 then Q_budget
    else
      match Vm.Interp.run m t ~budget:(budget ()) ~emulate:false with
      | Vm.Interp.Budget -> Q_budget
      | Vm.Interp.Halted ->
          ts.in_cache <- false;
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f ->
          ts.in_cache <- false;
          let pc = t.Vm.Machine.pc in
          if
            pc >= cache_base
            && String.length f >= 11
            && String.sub f 0 11 = "bad code at"
          then begin
            (* undecodable bytes inside the code cache: the cache, not
               the application, is damaged — heal and retry the block *)
            Trace.abort_tracegen rt ts;
            recover_tag rt ts ~tag:ts.next_tag ~reason:f;
            from_dispatcher ()
          end
          else Q_fault f
      | Vm.Interp.Signal h ->
          (* unreachable while interception is on (the VM defers
             signals to our safe points); if one surfaces anyway,
             re-queue it instead of dying *)
          ts.thread.Vm.Machine.pending_signals <-
            ts.thread.Vm.Machine.pending_signals @ [ h ];
          resume ()
      | Vm.Interp.Smc target ->
          (* the application wrote over executed code: flush the stale
             fragments, then continue where the hardware stopped *)
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush: %d fragments" (List.length flushed);
          (match
             List.find_opt
               (fun f -> target >= f.entry && target < f.total_end)
               flushed
           with
           | None -> resume ()
           | Some f when target = f.entry ->
               (* a linked branch pointed at the flushed fragment: we
                  know its application tag, so dispatch it fresh *)
               ts.next_tag <- f.tag;
               from_dispatcher ()
           | Some _ ->
               Q_fault
                 "self-modifying code rewrote the fragment currently executing")
      | Vm.Interp.Ccall { id; resume = rpc } -> (
          rt.stats.Stats.clean_calls <- rt.stats.Stats.clean_calls + 1;
          charge rt rt.opts.Options.costs.Options.clean_call;
          match Hashtbl.find_opt rt.ccalls id with
          | None -> Q_fault (Printf.sprintf "unknown clean call %d" id)
          | Some f ->
              Guard.protect rt ~hook:"clean_call" (fun () -> f { rt; ts });
              t.Vm.Machine.pc <- rpc;
              resume ())
      | Vm.Interp.Trap addr -> (
          charge rt rt.opts.Options.costs.Options.stub_exec;
          let id = (addr - trap_base) / 4 in
          match exit_of_id rt id with
          | None -> Q_fault (Printf.sprintf "unknown trap 0x%x" addr)
          | Some e -> (
              match e.e_kind with
              | Exit_direct ->
                  handle_direct_exit rt ts e;
                  from_dispatcher ()
              | Exit_indirect _ -> (
                  match Ibl.handle_indirect_exit rt ts e with
                  | `Stay f -> enter f
                  | `Dispatch -> from_dispatcher ())))
  in
  if ts.in_cache && not rt.opts.Options.emulate then resume ()
  else if rt.opts.Options.emulate then begin
    (* Table 1 row 1: no cache; re-decode and charge overhead on every
       instruction *)
    t.Vm.Machine.pc <- ts.next_tag;
    match Vm.Interp.run m t ~budget:(budget ()) ~emulate:true with
    | Vm.Interp.Budget ->
        ts.next_tag <- t.Vm.Machine.pc;
        Q_budget
    | Vm.Interp.Halted -> Q_thread_done
    | Vm.Interp.Fault f -> Q_fault f
    | s -> Q_fault ("unexpected emulation stop: " ^ Vm.Interp.stop_to_string s)
  end
  else from_dispatcher ()
