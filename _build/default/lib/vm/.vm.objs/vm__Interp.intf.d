lib/vm/interp.mli: Machine
