lib/isa/opcode.mli: Cond Eflags Format
