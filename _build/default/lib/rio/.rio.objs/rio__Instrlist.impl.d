lib/rio/instrlist.ml: Bytes Char Fmt Instr Isa Level List
