(** The five levels of instruction representation (paper §3.1):
    L0 un-decoded bundle, L1 un-decoded single instruction, L2 opcode +
    eflags, L3 fully decoded with valid raw bytes, L4 fully decoded
    with invalidated raw bytes. *)

type t = L0 | L1 | L2 | L3 | L4

val to_int : t -> int
val of_int : int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
