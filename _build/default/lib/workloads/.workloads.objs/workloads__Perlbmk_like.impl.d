lib/workloads/perlbmk_like.ml: Asm Fun List Workload
