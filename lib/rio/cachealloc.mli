(** Unit-granular allocator for a bounded code-cache region.

    The cache-management layer (DESIGN.md §6.3): a fixed address range
    is carved into fixed-size units; fragments occupy contiguous unit
    runs handed out first-fit from a sorted free list and returned one
    run at a time as the runtime evicts fragments in FIFO order.  The
    allocator is a pure address-space manager — it knows nothing about
    fragments, threads, or eviction policy; {!Emit} owns those
    decisions and the runtime keeps separate instances for the
    basic-block and trace regions. *)

type t

val default_unit_bytes : int
(** 64: small enough that a typical basic block wastes under one unit,
    large enough to keep free lists short. *)

val create : base:int -> size:int -> ?unit_bytes:int -> unit -> t
(** An allocator over [\[base, base + size)]. [size] is rounded down to
    a whole number of units. *)

val alloc : t -> int -> int option
(** [alloc t bytes] — first-fit allocation of a contiguous run covering
    [bytes]; [None] when no free run is large enough (the caller evicts
    and retries, or gives up). *)

val free : t -> addr:int -> int
(** Release the allocation starting at [addr]; returns the bytes
    reclaimed.  Raises [Invalid_argument] if [addr] is not a live
    allocation of this allocator. *)

val slide_down : t -> addr:int -> int
(** [slide_down t ~addr] re-places the allocation starting at [addr] at
    the lowest address that fits it and returns the new address (always
    [<= addr]; [= addr] when it cannot move lower).  Only the address
    bookkeeping moves — the caller must copy the bytes and fix up any
    embedded addresses (the relocation replay in {!Emit}).  The new run
    may overlap the old one.  Raises [Invalid_argument] if [addr] is
    not a live allocation of this allocator. *)

val reset : t -> unit
(** Drop every allocation (flush-the-world). *)

val capacity : t -> int
val used_bytes : t -> int
val free_bytes : t -> int

val holes : t -> int
(** Number of maximal free runs — the free-list fragmentation gauge. *)

val largest_free_bytes : t -> int
(** Size of the largest free run: the biggest fragment that could be
    emitted without evicting. *)
