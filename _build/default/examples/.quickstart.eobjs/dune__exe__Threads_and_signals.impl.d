examples/threads_and_signals.ml: Asm List Printf Rio String Vm
