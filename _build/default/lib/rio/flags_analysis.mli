(** Eflags liveness over linear code — the analysis Level 2 exists to
    make cheap (paper §3.1), used to decide whether inserted code must
    preserve the application's flags. *)

val dead_after : Instr.t option -> bool
(** True when the application flags are provably dead at the program
    point before the given instruction: walking forward, every flag is
    written before read without leaving the fragment.  List end and
    exit CTIs are conservative live boundaries. *)

val written_before_read : Instr.t option -> int
(** The set of flags certainly written before any read, as a
    flag-register bit mask. *)
