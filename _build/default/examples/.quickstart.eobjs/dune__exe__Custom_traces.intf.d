examples/custom_traces.mli:
