(** vortex-like: object database transactions (SPEC2000 255.vortex).

    Character: extremely call-dense — every record access goes through
    small accessor/validator routines, so hot paths cross many
    call/return pairs.  Default loop-oriented traces split calls from
    their returns; the custom-trace client's call inlining (and
    return elision under the calling convention) is the paper's
    targeted fix (§4.4). *)

open Asm.Dsl

let records = 512
let txns = 5200

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);                     (* committed count / checksum *)
    label "txn";
    (* pick a record *)
    mov eax edx;
    imul eax (i 131);
    and_ eax (i (records - 1));
    mov esi eax;
    call "fetch";
    call "validate";
    test eax eax;
    j z "abort";
    call "update";
    add edi (i 1);
    jmp "commit";
    label "abort";
    sub edi (i 1);
    label "commit";
    inc edx;
    cmp edx (i txns);
    j l "txn";
    out edi;
    hlt;
    (* --- accessors --- *)
    label "fetch";
    li ebx "db";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    ret;
    label "validate";
    (* field checks via helper calls *)
    call "check_low";
    test eax eax;
    j z "vdone";
    call "check_high";
    label "vdone";
    ret;
    label "check_low";
    li ebx "db";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    and_ eax (i 0xFF);
    cmp eax (i 4);
    j nl "cl_ok";
    mov eax (i 0);
    ret;
    label "cl_ok";
    mov eax (i 1);
    ret;
    label "check_high";
    li ebx "db";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    shr eax (i 24);
    cmp eax (i 250);
    j le "ch_ok";
    mov eax (i 0);
    ret;
    label "ch_ok";
    mov eax (i 1);
    ret;
    label "update";
    li ebx "db";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    add eax (i 3);
    mov (m ~base:ebx ~index:(esi, 4) ()) eax;
    ret;
  ]

let data = [ label "db"; word32 (Workload.lcg ~seed:21 records) ]

let workload =
  Workload.make ~name:"vortex" ~spec_name:"255.vortex" ~fp:false
    ~description:
      "call-dense record accessors and validators (custom-trace call-inlining \
       showcase)"
    (program ~name:"vortex" ~entry:"main" ~text ~data ())
