(** Cooperative round-robin scheduler for running programs directly on
    the simulated machine (native execution and pure emulation). *)

type outcome = {
  stop : Interp.stop;  (** why the last thread stopped *)
  cycles : int;
  insns : int;
}

val default_quantum : int

val run :
  ?quantum:int -> ?max_cycles:int -> emulate:bool -> Machine.t -> outcome
(** Run all live threads to completion (or fault), round-robin. *)
