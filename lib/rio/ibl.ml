(** Indirect-branch lookup (paper §2.3), split out of the dispatcher.

    The simulated in-cache hashtable is the [ibl] slot of the unified
    {!Fragindex}: a hit continues in the cache paying only the lookup
    cost; a miss (or disabled in-cache lookup) pays the full context
    switch and goes back to the dispatcher.

    At [-O3] this trap is also the speculation profiler's window onto
    indirect control flow: each indirect exit from a basic block feeds
    the owning site's successor profile, and each indirect exit that is
    a trace guard (the inline check's jne) is a guard violation. *)

open Types
module FI = Fragindex

let handle_indirect_exit (rt : runtime) (ts : thread_state) (e : exit_) :
    [ `Stay of fragment | `Dispatch ] =
  let mem = Vm.Machine.mem rt.machine in
  let target = Vm.Memory.read_u32 mem (tls_addr ~tid:ts.ts_tid ~slot:slot_ibl_target) in
  ts.next_tag <- target;
  if rt.opts.Options.opt_level >= 3 then begin
    match e.e_owner with
    | Some owner when not owner.deleted -> (
        match owner.kind with
        | Bb -> FI.record_successor ts.index owner.tag target
        | Trace -> (
            match guard_of_exit owner e.exit_id with
            | Some g ->
                g.g_violations <- g.g_violations + 1;
                rt.stats.Stats.spec_violations <-
                  rt.stats.Stats.spec_violations + 1;
                (* burst accounting: only back-to-back misses spend the
                   budget.  A guard that still hits most of the time
                   fires with long gaps and its burst keeps resetting;
                   a phase change fires it every iteration. *)
                let now = Vm.Machine.cycles rt.machine in
                if now - g.g_last_violation <= spec_burst_window then
                  g.g_burst <- g.g_burst + 1
                else g.g_burst <- 1;
                g.g_last_violation <- now;
                log_flow rt "guard violated (ind) trace 0x%x site 0x%x burst %d"
                  owner.tag g.g_site g.g_burst;
                (* the budget check happens here, at the violation,
                   because a self-looping trace may never re-enter
                   through the dispatcher where deferred
                   re-optimization polls *)
                if g.g_burst >= rt.opts.Options.spec_max_violations then
                  ignore (Opt.despeculate rt ts owner g)
            | None -> ()))
    | _ -> ()
  end;
  if rt.opts.Options.link_indirect && ts.tracegen = None then begin
    (* the in-cache hashtable lookup *)
    rt.stats.Stats.ibl_lookups <- rt.stats.Stats.ibl_lookups + 1;
    charge rt rt.opts.Options.costs.Options.ibl_lookup;
    match FI.find_ibl ts.index target with
    | Some f when not f.deleted ->
        log_flow rt "ibl hit 0x%x" target;
        `Stay f
    | _ ->
        rt.stats.Stats.ibl_misses <- rt.stats.Stats.ibl_misses + 1;
        log_flow rt "ibl miss 0x%x" target;
        `Dispatch
  end
  else `Dispatch
