(** Shared scaffolding for the bench sweep subcommands (throughput,
    cachesweep, optsweep, parsweep): CLI parsing, native-checked runs,
    and JSON datapoint emission.  Factoring it here keeps each sweep
    about its experiment, not its plumbing. *)

let pr fmt = Printf.printf fmt

let geomean xs =
  exp
    (List.fold_left (fun a x -> a +. log x) 0.0 xs
    /. float_of_int (List.length xs))

let time_now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

type cli = {
  quick : bool;
  out_path : string;
  extra : (string * string) list;  (* accepted --name value options *)
}

(** Parse a sweep's arguments: [--quick], [--out PATH], plus any
    [--name VALUE] options named in [string_opts]. *)
let parse_cli ~cmd ?(string_opts = []) ~default_out (args : string list) : cli =
  let quick = ref false in
  let out_path = ref default_out in
  let extra = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: tl ->
        quick := true;
        parse tl
    | "--out" :: p :: tl ->
        out_path := p;
        parse tl
    | a :: v :: tl when List.mem a string_opts ->
        extra := (a, v) :: !extra;
        parse tl
    | a :: _ -> failwith (cmd ^ ": unknown argument " ^ a)
  in
  parse args;
  { quick = !quick; out_path = !out_path; extra = List.rev !extra }

(* ------------------------------------------------------------------ *)
(* Native references                                                  *)
(* ------------------------------------------------------------------ *)

(** Native run that must complete; sweeps compare against it. *)
let native_checked (w : Workloads.Workload.t) : Workloads.Workload.run_result =
  let r = Workloads.Workload.run_native w in
  if not r.Workloads.Workload.ok then
    failwith (w.Workloads.Workload.name ^ ": native failed");
  r

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

let rec output_json oc ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> output_string oc "null"
  | Bool b -> output_string oc (string_of_bool b)
  | Int n -> output_string oc (string_of_int n)
  | Float f -> Printf.fprintf oc "%.6g" f
  | Str s -> Printf.fprintf oc "%S" s
  | Arr [] -> output_string oc "[]"
  | Arr vs ->
      output_string oc "[\n";
      List.iteri
        (fun k x ->
          output_string oc (pad (indent + 2));
          output_json oc ~indent:(indent + 2) x;
          if k < List.length vs - 1 then output_string oc ",";
          output_string oc "\n")
        vs;
      output_string oc (pad indent);
      output_string oc "]"
  | Obj [] -> output_string oc "{}"
  | Obj fields ->
      output_string oc "{\n";
      List.iteri
        (fun k (name, x) ->
          output_string oc (pad (indent + 2));
          Printf.fprintf oc "%S: " name;
          output_json oc ~indent:(indent + 2) x;
          if k < List.length fields - 1 then output_string oc ",";
          output_string oc "\n")
        fields;
      output_string oc (pad indent);
      output_string oc "}"

(** Write a sweep's JSON datapoint and report the path. *)
let write_json ~path (v : json) : unit =
  let oc = open_out path in
  output_json oc ~indent:0 v;
  output_string oc "\n";
  close_out oc;
  pr "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Pool scaffolding (parsweep, chaossweep)                            *)
(* ------------------------------------------------------------------ *)

(** Boot table for a workload mix: one boot per workload, image
    assembled once, cold-load machine factory per instance.
    [opts_for] maps a workload name to its engine options — this is
    where a bundle's per-workload opt-level overrides reach the pool
    (default: [opts] for every workload). *)
let pool_boots ?(client = fun () -> Rio.Types.null_client) ?cache_dir
    ?opts_for ~opts (wls : Workloads.Workload.t list) :
    (string * Rio.Pool.boot) list =
  let opts_for = match opts_for with Some f -> f | None -> fun _ -> opts in
  List.map
    (fun w ->
      let image = Asm.Assemble.assemble w.Workloads.Workload.program in
      let name = w.Workloads.Workload.name in
      ( name,
        {
          Rio.Pool.boot_machine =
            (fun () ->
              let m = Vm.Machine.create () in
              Asm.Image.load_cold m image;
              m);
          boot_entry = image.Asm.Image.entry;
          boot_stack_top = Asm.Image.default_stack_top;
          boot_restore = (fun m ~zeroed -> Asm.Image.restore m image ~zeroed);
          boot_opts = opts_for name;
          boot_client = client;
          boot_image_digest = Asm.Image.digest image;
          boot_cache =
            Option.map
              (fun dir ->
                Filename.concat dir (Rio.Pool.cache_file_name name))
              cache_dir;
        } ))
    wls

(** Request maker over a workload mix, with a native-reference cache:
    request [i] round-robins the mix at seed [seed_base + i]; each
    (workload, seed) native output is computed once and reused across
    passes and pools. *)
let request_maker (wls : Workloads.Workload.t list) :
    seed_base:int -> int -> Rio.Pool.request list =
  let refs : (string * int, int list) Hashtbl.t = Hashtbl.create 64 in
  let native_ref (w : Workloads.Workload.t) seed =
    match Hashtbl.find_opt refs (w.Workloads.Workload.name, seed) with
    | Some out -> out
    | None ->
        let input =
          Workloads.Workload.request_input ~seed @ w.Workloads.Workload.input
        in
        let r = native_checked (Workloads.Workload.with_input w input) in
        Hashtbl.replace refs
          (w.Workloads.Workload.name, seed)
          r.Workloads.Workload.output;
        r.Workloads.Workload.output
  in
  let nwl = List.length wls in
  fun ~seed_base n ->
    List.init n (fun i ->
        let w = List.nth wls (i mod nwl) in
        let seed = seed_base + i in
        {
          Rio.Pool.req_id = i;
          req_key = w.Workloads.Workload.name;
          req_seed = seed;
          req_input =
            Workloads.Workload.request_input ~seed @ w.Workloads.Workload.input;
          req_expect = Some (native_ref w seed);
        })

(** Submit that treats a rejection as a sweep bug. *)
let submit_exn pool (r : Rio.Pool.request) : unit =
  match Rio.Pool.submit pool r with
  | Ok () -> ()
  | Error e ->
      failwith
        (Printf.sprintf "pool rejected %s seed %d: %s" r.Rio.Pool.req_key
           r.Rio.Pool.req_seed
           (Rio.Pool.reject_to_string e))

(** Count and report results that did not come back ok. *)
let check_pass ~divergences tag (results : Rio.Pool.result list) : unit =
  List.iter
    (fun r ->
      if not r.Rio.Pool.res_ok then begin
        incr divergences;
        pr "!! %s: %s seed %d on domain %d diverged (%s)\n%!" tag
          r.Rio.Pool.res_key r.Rio.Pool.res_seed r.Rio.Pool.res_worker
          (Rio.Engine.stop_reason_to_string r.Rio.Pool.res_reason)
      end)
    results

(* ------------------------------------------------------------------ *)
(* Baselines                                                          *)
(* ------------------------------------------------------------------ *)

(** Baseline file: one "<name> <value>" pair per line, '#' comments. *)
let read_baseline path : (string * float) list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let acc = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line with
           | name :: rest -> (
               match List.filter (fun s -> s <> "") rest with
               | [ v ] -> acc := (name, float_of_string v) :: !acc
               | _ -> ())
           | [] -> ()
       done
     with End_of_file -> close_in ic);
    List.rev !acc
  end
