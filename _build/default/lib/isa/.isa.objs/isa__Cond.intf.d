lib/isa/cond.mli: Eflags Format
