(** Warm-reuse and domain-parallel serving tests (DESIGN.md §6.5).

    The load-bearing property: serving a request on a {e warm} reused
    instance — code cache, fragment index, and traces carried over from
    arbitrary earlier requests — is observationally identical to
    serving it on a fresh instance: same output, same stop reason, same
    final registers, flags, pc, and application memory.  Simulated
    cycle counts are allowed to differ (that is the point of reuse:
    warm requests skip block building). *)

open Workloads

let serving_names = [ "perlbmk"; "gzip"; "parser"; "gcc" ]

let serving =
  List.map
    (fun n -> Workload.serving_variant (Option.get (Suite.by_name n)))
    serving_names

type site = {
  image : Asm.Image.t;
  workload : Workload.t;
}

let sites =
  List.map
    (fun w -> (w.Workload.name, { image = Asm.Assemble.assemble w.Workload.program; workload = w }))
    serving

let fresh_machine (s : site) =
  let m = Vm.Machine.create () in
  Asm.Image.load_cold m s.image;
  m

let input_for (s : site) seed =
  Workload.request_input ~seed @ s.workload.Workload.input

(* Serve one request on [rt] (already reset or freshly created): add
   the main thread, feed the input, run. *)
let serve_on (rt : Rio.Engine.t) (s : site) seed =
  let m = Rio.Engine.machine rt in
  ignore
    (Vm.Machine.add_thread m ~entry:s.image.Asm.Image.entry
       ~stack_top:Asm.Image.default_stack_top);
  Vm.Machine.set_input m (input_for s seed);
  Rio.Engine.run rt

(* One warm server: a table of long-lived instances keyed by workload,
   exactly as a pool worker keeps them. *)
let warm_server ~opts () =
  let tbl : (string, Rio.Engine.t) Hashtbl.t = Hashtbl.create 8 in
  fun (name, seed) ->
    let s = List.assoc name sites in
    let rt =
      match Hashtbl.find_opt tbl name with
      | Some rt ->
          Rio.Engine.reset_for_reuse rt ~restore:(fun m ~zeroed ->
              Asm.Image.restore m s.image ~zeroed);
          rt
      | None ->
          let rt = Rio.Engine.create ~opts (fresh_machine s) in
          Hashtbl.replace tbl name rt;
          rt
    in
    (serve_on rt s seed, rt)

let fresh_serve ~opts (name, seed) =
  let s = List.assoc name sites in
  let rt = Rio.Engine.create ~opts (fresh_machine s) in
  (serve_on rt s seed, rt)

(* Final observable state: output, stop reason, main-thread register
   file, and all application memory below the TLS area. *)
let state_equal (o1 : Rio.Engine.outcome) rt1 (o2 : Rio.Engine.outcome) rt2 =
  let m1 = Rio.Engine.machine rt1 and m2 = Rio.Engine.machine rt2 in
  let t1 = Vm.Machine.main_thread m1 and t2 = Vm.Machine.main_thread m2 in
  let problems = ref [] in
  let check name b = if not b then problems := name :: !problems in
  check "output" (Vm.Machine.output m1 = Vm.Machine.output m2);
  check "reason" (o1.Rio.Engine.reason = o2.Rio.Engine.reason);
  check "regs" (t1.Vm.Machine.regs = t2.Vm.Machine.regs);
  check "fregs" (t1.Vm.Machine.fregs = t2.Vm.Machine.fregs);
  check "eflags" (t1.Vm.Machine.eflags = t2.Vm.Machine.eflags);
  (* a thread that halts while executing inside the code cache leaves
     pc at the halt's cache address, which legitimately depends on
     cache layout (fresh RIO vs native differ the same way); pc is an
     observable only while it points at application code *)
  check "pc"
    (if
       Rio.Types.is_app_addr t1.Vm.Machine.pc
       && Rio.Types.is_app_addr t2.Vm.Machine.pc
     then t1.Vm.Machine.pc = t2.Vm.Machine.pc
     else true);
  check "app memory"
    (Vm.Memory.equal_range
       (Vm.Machine.mem m1) (Vm.Machine.mem m2)
       ~addr:0 ~len:Rio.Types.tls_base);
  !problems

let default_opts = { Rio.Options.default with max_cycles = max_int / 2 }

let pressure_opts =
  {
    default_opts with
    Rio.Options.cache_capacity =
      Some (2 * Rio.Options.min_cache_capacity Rio.Options.default);
    flush_policy = Rio.Options.Flush_fifo;
  }

(* ------------------------------------------------------------------ *)
(* qcheck: warm reused instance == fresh instance per request          *)
(* ------------------------------------------------------------------ *)

let gen_sequence =
  QCheck.(
    list_of_size (Gen.int_range 3 6)
      (pair (int_range 0 (List.length serving_names - 1)) (int_range 0 1000)))

let warm_equals_fresh ~name ~opts =
  QCheck.Test.make ~count:8 ~name gen_sequence (fun seq ->
      let seq =
        List.map (fun (k, seed) -> (List.nth serving_names k, seed)) seq
      in
      let warm = warm_server ~opts () in
      List.for_all
        (fun req ->
          let ow, rtw = warm req in
          let of_, rtf = fresh_serve ~opts req in
          match state_equal ow rtw of_ rtf with
          | [] -> true
          | ps ->
              QCheck.Test.fail_reportf "%s seed %d: %s differ" (fst req)
                (snd req)
                (String.concat ", " ps))
        seq)

(* ------------------------------------------------------------------ *)
(* Two-domain smoke: concurrent independent instances                  *)
(* ------------------------------------------------------------------ *)

(* Two domains running full RIO instances at once: any domain-unsafe
   global mutable state in lib/rio or lib/vm shows up here as
   corruption or divergence. *)
let two_domain_smoke same_workload () =
  let pick i =
    if same_workload then List.hd serving
    else List.nth serving (i mod List.length serving)
  in
  let run_one i =
    let w = pick i in
    let s = List.assoc w.Workload.name sites in
    let results = ref [] in
    for seed = 10 * i to (10 * i) + 2 do
      let o, rt = fresh_serve ~opts:default_opts (w.Workload.name, seed) in
      let native =
        Workload.run_native (Workload.with_input w (input_for s seed))
      in
      results :=
        ( seed,
          o.Rio.Engine.reason = Rio.Engine.All_exited,
          Vm.Machine.output (Rio.Engine.machine rt) = native.Workload.output )
        :: !results
    done;
    !results
  in
  let d1 = Domain.spawn (fun () -> run_one 0) in
  let d2 = Domain.spawn (fun () -> run_one 1) in
  let check who rs =
    List.iter
      (fun (seed, exited, matches) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d exited" who seed)
          true exited;
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d matches native" who seed)
          true matches)
      rs
  in
  check "domain0" (Domain.join d1);
  check "domain1" (Domain.join d2)

(* ------------------------------------------------------------------ *)
(* Pool integration                                                    *)
(* ------------------------------------------------------------------ *)

let pool_boots ~opts =
  List.map
    (fun (name, s) ->
      ( name,
        {
          Rio.Pool.boot_machine = (fun () -> fresh_machine s);
          boot_entry = s.image.Asm.Image.entry;
          boot_stack_top = Asm.Image.default_stack_top;
          boot_restore =
            (fun m ~zeroed -> Asm.Image.restore m s.image ~zeroed);
          boot_opts = opts;
          boot_client = (fun () -> Rio.Types.null_client);
          boot_image_digest = Asm.Image.digest s.image;
          boot_cache = None;
        } ))
    sites

let pool_requests n =
  List.init n (fun i ->
      let name = List.nth serving_names (i mod List.length serving_names) in
      let s = List.assoc name sites in
      let seed = 100 + i in
      let native =
        Workload.run_native (Workload.with_input s.workload (input_for s seed))
      in
      {
        Rio.Pool.req_id = i;
        req_key = name;
        req_seed = seed;
        req_input = input_for s seed;
        req_expect = Some native.Workload.output;
      })

(* Every submit in these tests is expected to be accepted. *)
let submit_ok pool r =
  match Rio.Pool.submit pool r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit rejected: %s" (Rio.Pool.reject_to_string e)

let pool_case () =
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2; max_inflight = 2 }
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let n = 12 in
  List.iter (submit_ok pool) (pool_requests n);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Alcotest.(check int) "all completed" n (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d ok" r.Rio.Pool.res_key r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results;
  Alcotest.(check int) "warm + cold covers all"
    n
    (snap.Rio.Pool.snap_warm_hits + snap.Rio.Pool.snap_cold_boots);
  (* 12 requests over 4 workloads x 2 domains: at most 8 cold boots *)
  Alcotest.(check bool) "some requests served warm" true
    (snap.Rio.Pool.snap_warm_hits > 0);
  (* a second, all-warm pass on the same pool *)
  Rio.Pool.reset_counters pool;
  List.iter (submit_ok pool) (pool_requests n);
  let results2 = Rio.Pool.drain pool in
  let snap2 = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "pass2 %s seed %d ok" r.Rio.Pool.res_key
           r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results2;
  Alcotest.(check int) "second pass fully warm" n
    snap2.Rio.Pool.snap_warm_hits;
  (* merged stats cover work from both domains *)
  Alcotest.(check bool) "merged stats saw blocks" true
    (snap2.Rio.Pool.snap_stats.Rio.Stats.blocks_built > 0)

let pool_faults_case () =
  let opts =
    {
      default_opts with
      Rio.Options.faults = Some { Rio.Options.default_faults with fi_seed = 3 };
      audit_period = 1;
    }
  in
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2 }
      ~boots:(pool_boots ~opts) ()
  in
  let n = 8 in
  List.iter (submit_ok pool) (pool_requests n);
  let results = Rio.Pool.drain pool in
  Rio.Pool.shutdown pool;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "faults %s seed %d ok" r.Rio.Pool.res_key
           r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results

(* ------------------------------------------------------------------ *)
(* Supervision, deadlines, retry ladder, quarantine (DESIGN.md §6.6)   *)
(* ------------------------------------------------------------------ *)

(* Submitting an unregistered key is an error result, not a raise that
   would kill the submitting caller or a worker domain; the pool keeps
   serving registered keys afterwards. *)
let unknown_key_case () =
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2 }
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let bogus =
    { Rio.Pool.req_id = 0; req_key = "no-such-workload"; req_seed = 1;
      req_input = []; req_expect = None }
  in
  (match Rio.Pool.submit pool bogus with
   | Error (Rio.Pool.Unknown_key _) -> ()
   | Ok () -> Alcotest.fail "bogus key accepted"
   | Error e ->
       Alcotest.failf "wrong rejection: %s" (Rio.Pool.reject_to_string e));
  List.iter (submit_ok pool) (pool_requests 4);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  Alcotest.(check int) "good requests still served" 4 (List.length results);
  List.iter
    (fun r -> Alcotest.(check bool) "still ok" true r.Rio.Pool.res_ok)
    results;
  Alcotest.(check int) "rejection counted" 1
    snap.Rio.Pool.snap_rejected_unknown

(* The dedicated worker-kill test: crash-only chaos at period 1 kills
   the serving domain mid-request on every chaos-eligible attempt.  The
   supervisor must respawn each dead domain and requeue the request it
   died holding; every accepted request still produces an ok result. *)
let worker_kill_respawn_case () =
  let chaos =
    {
      Rio.Faultinject.ch_seed = 11;
      ch_period = 1;
      ch_crash = true;
      ch_stall = false;
      ch_poison = false;
      ch_hook_storm = false;
    }
  in
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2; retries = 1 }
      ~chaos
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let n = 6 in
  List.iter (submit_ok pool) (pool_requests n);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  Alcotest.(check int) "no request lost" n (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d recovered" r.Rio.Pool.res_key
           r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results;
  Alcotest.(check bool) "supervisor respawned workers" true
    (snap.Rio.Pool.snap_respawns >= 1);
  Alcotest.(check bool) "killed requests requeued" true
    (snap.Rio.Pool.snap_requeues >= 1)

(* The exception barrier: a raise while serving (here, a boot whose
   machine factory throws) becomes a Crashed result, not a dead worker;
   the pool keeps serving other keys on the same domains. *)
let crash_barrier_case () =
  let broken =
    ( "broken",
      {
        Rio.Pool.boot_machine = (fun () -> failwith "boot exploded");
        boot_entry = 0;
        boot_stack_top = 0;
        boot_restore = (fun _ ~zeroed -> zeroed);
        boot_opts = default_opts;
        boot_client = (fun () -> Rio.Types.null_client);
        boot_image_digest = 0;
        boot_cache = None;
      } )
  in
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2; retries = 0 }
      ~boots:(broken :: pool_boots ~opts:default_opts) ()
  in
  submit_ok pool
    { Rio.Pool.req_id = 0; req_key = "broken"; req_seed = 1; req_input = [];
      req_expect = None };
  List.iter (submit_ok pool) (pool_requests 4);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  Alcotest.(check int) "all requests completed" 5 (List.length results);
  let crashed, rest =
    List.partition (fun r -> r.Rio.Pool.res_key = "broken") results
  in
  (match crashed with
   | [ r ] ->
       Alcotest.(check bool) "crashed result" true
         (match r.Rio.Pool.res_reason with
          | Rio.Engine.Crashed _ -> true
          | _ -> false);
       Alcotest.(check bool) "crashed not ok" false r.Rio.Pool.res_ok
   | rs -> Alcotest.failf "expected 1 broken result, got %d" (List.length rs));
  List.iter
    (fun r -> Alcotest.(check bool) "others still ok" true r.Rio.Pool.res_ok)
    rest;
  Alcotest.(check bool) "crash counted" true (snap.Rio.Pool.snap_crashes >= 1);
  Alcotest.(check int) "no respawn needed" 0 snap.Rio.Pool.snap_respawns

(* A cycle-budget deadline preempts a request at a safe point and
   reports Deadline_exceeded as the final reason once the ladder is
   exhausted. *)
let deadline_case () =
  let pool =
    Rio.Pool.create
      ~cfg:
        {
          Rio.Options.default_pool with
          domains = 1;
          retries = 0;
          deadline_cycles = Some 1_000;
        }
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  List.iter (submit_ok pool) (pool_requests 1);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  (match results with
   | [ r ] ->
       Alcotest.(check bool) "preempted" true
         (r.Rio.Pool.res_reason = Rio.Engine.Deadline_exceeded);
       Alcotest.(check bool) "not ok" false r.Rio.Pool.res_ok
   | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs));
  Alcotest.(check bool) "deadline counted" true
    (snap.Rio.Pool.snap_deadline_hits >= 1)

(* Circuit breaker lifecycle, deterministically on one domain: two
   consecutive final failures (wrong expectation) open the key's
   breaker; the next submit is admitted as the probe; its success
   closes the breaker. *)
let quarantine_case () =
  let pool =
    Rio.Pool.create
      ~cfg:
        {
          Rio.Options.default_pool with
          domains = 1;
          retries = 0;
          quarantine_threshold = 2;
        }
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let good = List.hd (pool_requests 1) in
  let bad i = { good with Rio.Pool.req_seed = 700 + i; req_expect = Some [ -1 ] } in
  List.iter (submit_ok pool) [ bad 0; bad 1 ];
  let failed = Rio.Pool.drain pool in
  Alcotest.(check int) "both failures completed" 2 (List.length failed);
  (* breaker now open: the next submit must be admitted as the probe *)
  submit_ok pool good;
  let probed = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  (* closed again: a further request is served normally *)
  submit_ok pool good;
  let after = Rio.Pool.drain pool in
  let snap2 = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  (match probed with
   | [ r ] -> Alcotest.(check bool) "probe succeeded" true r.Rio.Pool.res_ok
   | rs -> Alcotest.failf "expected 1 probe result, got %d" (List.length rs));
  Alcotest.(check int) "breaker opened once" 1
    snap.Rio.Pool.snap_quarantine_opens;
  Alcotest.(check int) "probe admitted" 1 snap.Rio.Pool.snap_probes;
  Alcotest.(check int) "breaker closed" 1 snap.Rio.Pool.snap_quarantine_closes;
  Alcotest.(check int) "no key open at the end" 0
    snap2.Rio.Pool.snap_quarantined_now;
  (match after with
   | [ r ] -> Alcotest.(check bool) "post-close serve ok" true r.Rio.Pool.res_ok
   | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs))

(* drain_and_reload: quiesce, drop warm instances, resume; requests
   accepted before and after the reload are all served. *)
let reload_case () =
  let pool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 2 }
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let n = 8 in
  List.iter (submit_ok pool) (pool_requests n);
  let before = Rio.Pool.drain pool in
  Rio.Pool.drain_and_reload pool;
  List.iter (submit_ok pool) (pool_requests n);
  let after = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  Alcotest.(check int) "served before reload" n (List.length before);
  Alcotest.(check int) "served after reload" n (List.length after);
  List.iter
    (fun r -> Alcotest.(check bool) "ok across reload" true r.Rio.Pool.res_ok)
    (before @ after);
  Alcotest.(check int) "reload counted" 1 snap.Rio.Pool.snap_reloads

(* qcheck: a client hook that raises inside a pooled request (forced
   via hook-raise fault injection at period 1) never hangs drain and
   never loses a result, across warm and cold instances. *)
let hook_raise_never_hangs =
  let hook_opts =
    {
      default_opts with
      Rio.Options.faults =
        Some
          {
            Rio.Options.default_faults with
            fi_seed = 5;
            fi_period = 1;
            fi_corrupt = false;
            fi_links = false;
            fi_signals = false;
          };
      audit_period = 1;
    }
  in
  let hooked_boots =
    List.map
      (fun (name, b) ->
        ( name,
          {
            b with
            Rio.Pool.boot_client =
              (fun () ->
                { Rio.Types.null_client with
                  name = "raiser-target";
                  basic_block = Some (fun _ ~tag:_ _ -> ());
                });
          } ))
      (pool_boots ~opts:hook_opts)
  in
  QCheck.Test.make ~count:4 ~name:"hook raise never hangs or loses results"
    gen_sequence (fun seq ->
      let reqs =
        List.map
          (fun (k, seed) ->
            let name = List.nth serving_names (k mod List.length serving_names) in
            let s = List.assoc name sites in
            let seed = seed mod 50 in
            let native =
              Workload.run_native
                (Workload.with_input s.workload (input_for s seed))
            in
            {
              Rio.Pool.req_id = k;
              req_key = name;
              req_seed = seed;
              req_input = input_for s seed;
              req_expect = Some native.Workload.output;
            })
          seq
      in
      let pool =
        Rio.Pool.create
          ~cfg:{ Rio.Options.default_pool with domains = 2 }
          ~boots:hooked_boots ()
      in
      List.iter (submit_ok pool) reqs;
      (* warm pass over the same keys: hooks raise on reused instances too *)
      List.iter (submit_ok pool) reqs;
      let results = Rio.Pool.drain pool in
      Rio.Pool.shutdown pool;
      if List.length results <> 2 * List.length reqs then
        QCheck.Test.fail_reportf "lost results: %d of %d"
          (List.length results)
          (2 * List.length reqs)
      else
        List.for_all
          (fun r ->
            r.Rio.Pool.res_ok
            || QCheck.Test.fail_reportf "%s seed %d not ok (%s)"
                 r.Rio.Pool.res_key r.Rio.Pool.res_seed
                 (Rio.Engine.stop_reason_to_string r.Rio.Pool.res_reason))
          results)

(* ------------------------------------------------------------------ *)
(* Bundle overrides reach the booted instances                         *)
(* ------------------------------------------------------------------ *)

(* A tuned bundle's per-workload opt-level override must land in the
   Options of the instance the pool actually boots for that key — not
   just in the boot table.  Serve every key, then audit the fleet's
   live instances against the bundle's projection. *)
let bundle_override_case () =
  let bundle =
    {
      Rio.Bundle.b_opts = { default_opts with Rio.Options.opt_level = 2 };
      b_pool = { Rio.Options.default_pool with domains = 2 };
      b_overrides = [ ("gcc", 0); ("gzip", 1) ];
      b_provenance = Rio.Bundle.default_provenance;
    }
  in
  (match Rio.Bundle.validate bundle with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bundle: %s" (Rio.Bundle.error_to_string e));
  let boots =
    List.map
      (fun (name, boot) ->
        (name, { boot with Rio.Pool.boot_opts = Rio.Bundle.opts_for bundle name }))
      (pool_boots ~opts:default_opts)
  in
  let pool = Rio.Pool.create ~cfg:bundle.Rio.Bundle.b_pool ~boots () in
  List.iter (submit_ok pool) (pool_requests 8);
  let results = Rio.Pool.drain pool in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d ok" r.Rio.Pool.res_key r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results;
  let instances = Rio.Pool.warm_instances pool in
  Alcotest.(check bool) "fleet has warm instances" true (instances <> []);
  let audited = ref 0 in
  List.iter
    (fun (worker, key, eng) ->
      let got = (Rio.Engine.options eng).Rio.Options.opt_level in
      let want = (Rio.Bundle.opts_for bundle key).Rio.Options.opt_level in
      incr audited;
      Alcotest.(check int)
        (Printf.sprintf "worker %d key %s opt level" worker key)
        want got)
    instances;
  (* both overridden keys were exercised, not just the base level *)
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "%s booted somewhere" key)
        true
        (List.exists (fun (_, k, _) -> k = key) instances))
    [ "gcc"; "gzip"; "perlbmk" ];
  Rio.Pool.shutdown pool

let () =
  Alcotest.run "pool"
    [
      ( "warm reuse == fresh",
        [
          QCheck_alcotest.to_alcotest
            (warm_equals_fresh ~name:"default options" ~opts:default_opts);
          QCheck_alcotest.to_alcotest
            (warm_equals_fresh ~name:"FIFO cache pressure"
               ~opts:pressure_opts);
        ] );
      ( "two-domain smoke",
        [
          Alcotest.test_case "same workload concurrently" `Slow
            (two_domain_smoke true);
          Alcotest.test_case "different workloads concurrently" `Slow
            (two_domain_smoke false);
        ] );
      ( "pool",
        [
          Alcotest.test_case "warm serving with backpressure" `Slow pool_case;
          Alcotest.test_case "serving under fault injection" `Slow
            pool_faults_case;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "unknown key rejected, pool survives" `Quick
            unknown_key_case;
          Alcotest.test_case "worker killed mid-request is respawned" `Slow
            worker_kill_respawn_case;
          Alcotest.test_case "exception barrier yields Crashed result" `Quick
            crash_barrier_case;
          Alcotest.test_case "cycle deadline preempts" `Quick deadline_case;
          Alcotest.test_case "bundle override reaches instances" `Slow
            bundle_override_case;
          Alcotest.test_case "quarantine opens, probes, closes" `Slow
            quarantine_case;
          Alcotest.test_case "drain_and_reload keeps serving" `Slow
            reload_case;
          QCheck_alcotest.to_alcotest hook_raise_never_hangs;
        ] );
    ]
