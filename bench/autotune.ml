(** Autotune: end-to-end configuration-bundle search (DESIGN.md §6.9),
    written to BENCH_autotune.json plus a winning bundle.json.

    The system's tunable surface — opt level, trace/reopt/speculation
    thresholds, cache capacity, pool sizing and sharding — is searched
    as one {!Rio.Bundle.t} against an end-to-end objective, not knob by
    knob against micro-metrics.  Each candidate bundle boots a real
    serving pool, serves the same request mix every other candidate
    sees, and is scored by the geomean over workloads of mean simulated
    cycles per request (the paper's time metric, reproducible by
    [rio_serve --bundle]); makespan and host wall-clock ride along as
    secondary columns.

    Search: coordinate descent over a typed knob space (each knob
    enumerates its candidate settings; a sweep tries every off-current
    setting of every knob and moves to strict improvements), wrapped in
    a seeded random-restart ladder so the descent is not hostage to the
    default basin.  Identical bundles are memoized by digest — revisits
    are free.  After the global descent, a per-workload override pass
    picks each workload's opt level per-coordinate (levels are
    separable across workloads) from end-to-end level-sheet trials,
    constrained by a deterministic single-engine never-worse-than--O0
    guard — the same invariant the optsweep gate replays against the
    shipped bundle.

    Every trial is recorded as a first-class outcome, including the
    failures: [invalid] (the bundle was refused by validation — the
    search is allowed to propose these, e.g. a reopt threshold while
    descending through -O0), [diverged] (served output mismatched the
    native reference), and [failed] (harness-level refusal).  Hard
    gates: zero diverged/failed trials, the tuned bundle never worse
    than the defaults, and (full mode) a >= 3% geomean win. *)

open Workloads

let pr fmt = Printf.printf fmt

let arm_alarm ~quick =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline "!! autotune: HANG — alarm fired before completion";
         exit 3));
  ignore (Unix.alarm (if quick then 420 else 3000))

let opts (b : Rio.Bundle.t) = b.Rio.Bundle.b_opts
let pool_cfg (b : Rio.Bundle.t) = b.Rio.Bundle.b_pool
let set_opts (b : Rio.Bundle.t) o = { b with Rio.Bundle.b_opts = o }

(* ------------------------------------------------------------------ *)
(* Knob space                                                         *)
(* ------------------------------------------------------------------ *)

(** One searchable dimension: a printable name, the candidate settings
    (as strings, so the trial log and the JSON speak the same
    language), and get/set against a bundle.  Setting a knob may
    produce an invalid bundle — validation happens at trial time and
    the refusal is recorded, not raised. *)
type knob = {
  k_name : string;
  k_values : string list;
  k_get : Rio.Bundle.t -> string;
  k_set : Rio.Bundle.t -> string -> Rio.Bundle.t;
}

let int_knob name values get set =
  {
    k_name = name;
    k_values = List.map string_of_int values;
    k_get = (fun b -> string_of_int (get b));
    k_set = (fun b v -> set b (int_of_string v));
  }

let bool_knob name get set =
  {
    k_name = name;
    k_values = [ "false"; "true" ];
    k_get = (fun b -> string_of_bool (get b));
    k_set = (fun b v -> set b (bool_of_string v));
  }

(* int-option knobs print [None] as "none" *)
let opt_int_knob name values get set =
  {
    k_name = name;
    k_values = values;
    k_get =
      (fun b ->
        match get b with None -> "none" | Some n -> string_of_int n);
    k_set =
      (fun b v ->
        set b (if v = "none" then None else Some (int_of_string v)));
  }

(** The searched surface.  Quick mode trims values (CI budget), full
    mode searches the lot.  Deliberately excluded: the cost model
    (that would tune the simulator, not the system), fault injection,
    deadlines/retries/quarantine (supervision policy, not throughput),
    [max_cycles], and the pool scheduling knobs (domains, affinity,
    deque bounds) — the objective is simulated cycles per request,
    which scheduling cannot change, only smear with noise; pool sizing
    stays a deployment choice carried by the bundle's pool block. *)
let knob_space ~quick : knob list =
  let base =
    [
      int_knob "opt_level" [ 0; 1; 2; 3 ]
        (fun b -> (opts b).Rio.Options.opt_level)
        (fun b v -> set_opts b { (opts b) with Rio.Options.opt_level = v });
      int_knob "trace_threshold"
        (if quick then [ 25; 50 ] else [ 25; 50; 100 ])
        (fun b -> (opts b).Rio.Options.trace_threshold)
        (fun b v ->
          set_opts b { (opts b) with Rio.Options.trace_threshold = v });
      opt_int_knob "reopt_threshold"
        (if quick then [ "none"; "2" ] else [ "none"; "2"; "8" ])
        (fun b -> (opts b).Rio.Options.reopt_threshold)
        (fun b v ->
          set_opts b { (opts b) with Rio.Options.reopt_threshold = v });
      int_knob "spec_threshold"
        (if quick then [ 4; 8 ] else [ 4; 8; 16 ])
        (fun b -> (opts b).Rio.Options.spec_threshold)
        (fun b v ->
          set_opts b { (opts b) with Rio.Options.spec_threshold = v });
    ]
  in
  if quick then base
  else
    base
    @ [
        int_knob "max_trace_blocks" [ 8; 16; 32 ]
          (fun b -> (opts b).Rio.Options.max_trace_blocks)
          (fun b v ->
            set_opts b { (opts b) with Rio.Options.max_trace_blocks = v });
        int_knob "spec_max_violations" [ 1; 3; 8 ]
          (fun b -> (opts b).Rio.Options.spec_max_violations)
          (fun b v ->
            set_opts b { (opts b) with Rio.Options.spec_max_violations = v });
        opt_int_knob "cache_capacity" [ "none"; "16384"; "65536" ]
          (fun b -> (opts b).Rio.Options.cache_capacity)
          (fun b v ->
            set_opts b { (opts b) with Rio.Options.cache_capacity = v });
        int_knob "quantum" [ 50_000; 100_000; 200_000 ]
          (fun b -> (opts b).Rio.Options.quantum)
          (fun b v -> set_opts b { (opts b) with Rio.Options.quantum = v });
      ]

(* ------------------------------------------------------------------ *)
(* Trial measurement                                                  *)
(* ------------------------------------------------------------------ *)

type measurement = {
  m_objective : float;  (* geomean over workloads of mean cycles/request *)
  m_per_wl : (string * float) list;
  m_makespan : int;     (* max per-worker busy simulated cycles *)
  m_host_s : float;
  m_warm_hits : int;
  m_cold_boots : int;
}

(** First-class trial outcomes (the Demarch failure-signal pattern):
    refusals and divergences are data, not crashes. *)
type outcome =
  | Trial_ok of measurement
  | Trial_invalid of string       (* bundle refused by validation *)
  | Trial_divergent of int * float  (* served requests that did not match native *)
  | Trial_failed of string        (* harness-level failure *)

type trial = {
  t_id : int;
  t_phase : string;
  t_desc : string;     (* which move produced this bundle, e.g. "opt_level=3" *)
  t_digest : string;
  t_outcome : outcome;
}

let outcome_kind = function
  | Trial_ok _ -> "ok"
  | Trial_invalid _ -> "invalid"
  | Trial_divergent _ -> "diverged"
  | Trial_failed _ -> "failed"

let outcome_str = function
  | Trial_ok m ->
      Printf.sprintf "obj %.0f cyc/req  (host %.2fs, warm %d/cold %d)"
        m.m_objective m.m_host_s m.m_warm_hits m.m_cold_boots
  | Trial_invalid e -> "INVALID: " ^ e
  | Trial_divergent (n, _) -> Printf.sprintf "DIVERGED: %d request(s)" n
  | Trial_failed e -> "FAILED: " ^ e

(** Score one candidate end-to-end: validate, boot a pool with the
    bundle's pool block and per-workload override options, serve the
    shared request mix, and aggregate.  Any output mismatch makes the
    whole trial [Trial_divergent].

    The measurement pool runs on ONE domain regardless of the bundle's
    [domains]: the objective is simulated cycles, which worker count
    cannot change — but multi-domain work stealing makes each key's
    warm/cold request pattern scheduling-dependent, which would smear
    every per-workload number by up to tens of percent between
    identical trials.  Serialized, the whole sweep is deterministic
    and the shipped numbers are reproducible; [rio_serve --bundle]
    then serves the same bundle at its full domain count and must
    agree within scheduling noise. *)
let measure ~wls ~mk ~reqs_per_wl (b : Rio.Bundle.t) : outcome =
  match Rio.Bundle.validate b with
  | Error e -> Trial_invalid (Rio.Bundle.error_to_string e)
  | Ok () -> (
      let t0 = Unix.gettimeofday () in
      match
        let boots =
          Sweep.pool_boots ~opts:(opts b) ~opts_for:(Rio.Bundle.opts_for b) wls
        in
        let cfg = { (pool_cfg b) with Rio.Options.domains = 1 } in
        let pool = Rio.Pool.create ~cfg ~boots () in
        let n = reqs_per_wl * List.length wls in
        List.iter (Sweep.submit_exn pool) (mk ~seed_base:4242 n);
        let results = Rio.Pool.drain pool in
        let snap = Rio.Pool.stats pool in
        Rio.Pool.shutdown pool;
        (results, snap)
      with
      | exception e -> Trial_failed (Printexc.to_string e)
      | results, snap ->
          let host_s = Unix.gettimeofday () -. t0 in
          let diverged =
            List.length
              (List.filter (fun r -> not r.Rio.Pool.res_ok) results)
          in
          if diverged > 0 then Trial_divergent (diverged, host_s)
          else
            let per_wl =
              List.map
                (fun (w : Workload.t) ->
                  let name = w.Workload.name in
                  let cs =
                    List.filter_map
                      (fun r ->
                        if r.Rio.Pool.res_key = name then
                          Some (float_of_int r.Rio.Pool.res_cycles)
                        else None)
                      results
                  in
                  ( name,
                    List.fold_left ( +. ) 0.0 cs
                    /. float_of_int (List.length cs) ))
                wls
            in
            Trial_ok
              {
                m_objective = Sweep.geomean (List.map snd per_wl);
                m_per_wl = per_wl;
                m_makespan =
                  Array.fold_left max 0 snap.Rio.Pool.snap_busy_cycles;
                m_host_s = host_s;
                m_warm_hits = snap.Rio.Pool.snap_warm_hits;
                m_cold_boots = snap.Rio.Pool.snap_cold_boots;
              })

(* ------------------------------------------------------------------ *)
(* Search                                                             *)
(* ------------------------------------------------------------------ *)

(* Accept a move only if it wins by more than pool-scheduling noise;
   cycle effects worth shipping (opt levels, trace shape) are 1-10%. *)
let min_gain = 0.998

let descend ~score ~knobs ~phase start start_m =
  let best = ref start and best_m = ref start_m in
  let improved = ref true in
  let sweep = ref 0 in
  while !improved && !sweep < 3 do
    incr sweep;
    improved := false;
    List.iter
      (fun k ->
        List.iter
          (fun v ->
            if v <> k.k_get !best then
              let cand = k.k_set !best v in
              match
                score
                  ~phase:(Printf.sprintf "%s/sweep%d" phase !sweep)
                  ~desc:(k.k_name ^ "=" ^ v) cand
              with
              | Trial_ok m
                when m.m_objective < min_gain *. !best_m.m_objective ->
                  best := cand;
                  best_m := m;
                  improved := true
              | _ -> ())
          k.k_values)
      knobs
  done;
  (!best, !best_m)

(* Seeded ladder: restart 0 descends from the defaults, later rungs
   from a deterministic random corner of the knob space. *)
let lcg s = ((s * 25214903917) + 11) land 0xffff_ffff_ffff

let random_bundle ~knobs st base =
  List.fold_left
    (fun b k ->
      st := lcg !st;
      k.k_set b (List.nth k.k_values (!st mod List.length k.k_values)))
    base knobs

(* ------------------------------------------------------------------ *)
(* Per-workload override pass                                         *)
(* ------------------------------------------------------------------ *)

(** Opt levels are separable across workloads — one key's override
    cannot change another key's cycles — so each workload's level is
    picked per-coordinate from four end-to-end "level sheet" trials
    (the whole mix overridden to -O0/-O1/-O2/-O3), reading each
    workload's mean cycles out of each sheet.  A deterministic
    single-engine guard constrains the choice: a level whose
    single-engine cycles under the bundle's knobs are worse than the
    level-0 projection (or that diverges from native) is never
    picked — this is the same measurement the optsweep assertion
    replays against the shipped bundle, so the shipped bundle
    satisfies it by construction.  When the guard disqualifies the
    bundle's global level for some workload, that workload is
    overridden even if end-to-end scores are within noise. *)
let override_pass ~wls ~score (best : Rio.Bundle.t) best_m :
    Rio.Bundle.t * measurement =
  (* deterministic single-engine cycles at each level, memoized *)
  let native_of = Hashtbl.create 32 in
  let native (w : Workload.t) =
    match Hashtbl.find_opt native_of w.Workload.name with
    | Some r -> r
    | None ->
        let r = Sweep.native_checked w in
        Hashtbl.replace native_of w.Workload.name r;
        r
  in
  let se_memo = Hashtbl.create 64 in
  let se_cycles (w : Workload.t) lvl =
    match Hashtbl.find_opt se_memo (w.Workload.name, lvl) with
    | Some c -> c
    | None ->
        let probe =
          { best with Rio.Bundle.b_overrides = [ (w.Workload.name, lvl) ] }
        in
        let o = Rio.Bundle.opts_for probe w.Workload.name in
        let o = { o with Rio.Options.max_cycles = max_int / 2 } in
        let c =
          match Rio.Options.validate o with
          | Error _ -> None
          | Ok () ->
              let r, _rt = Workload.run_rio ~opts:o w in
              if
                r.Workload.ok
                && r.Workload.output = (native w).Workload.output
              then Some r.Workload.cycles
              else None
        in
        Hashtbl.replace se_memo (w.Workload.name, lvl) c;
        c
  in
  let guard_ok (w : Workload.t) lvl =
    lvl = 0
    ||
    match (se_cycles w lvl, se_cycles w 0) with
    | Some c, Some c0 -> c <= c0
    | _ -> false
  in
  (* end-to-end level sheet: the whole mix at each level *)
  let base_lvl = (opts best).Rio.Options.opt_level in
  let sheet =
    List.filter_map
      (fun lvl ->
        if lvl = base_lvl then Some (lvl, best_m.m_per_wl)
        else
          let all_over =
            {
              best with
              Rio.Bundle.b_overrides =
                List.map (fun (w : Workload.t) -> (w.Workload.name, lvl)) wls;
            }
          in
          match
            score ~phase:"override/sheet"
              ~desc:(Printf.sprintf "all=-O%d" lvl)
              all_over
          with
          | Trial_ok m -> Some (lvl, m.m_per_wl)
          | _ -> None)
      [ 0; 1; 2; 3 ]
  in
  let e2e name lvl =
    Option.bind (List.assoc_opt lvl sheet) (List.assoc_opt name)
  in
  let overrides =
    List.filter_map
      (fun (w : Workload.t) ->
        let name = w.Workload.name in
        let cands =
          List.filter_map
            (fun lvl ->
              if guard_ok w lvl then
                Option.map (fun c -> (lvl, c)) (e2e name lvl)
              else None)
            [ 0; 1; 2; 3 ]
        in
        let winner =
          List.fold_left
            (fun acc (lvl, c) ->
              match acc with
              | Some (_, bc) when bc <= c -> acc
              | _ -> Some (lvl, c))
            None cands
        in
        match winner with
        | None -> None
        | Some (lvl, c) ->
            let base_allowed = guard_ok w base_lvl in
            let keep_base =
              base_allowed
              &&
              match e2e name base_lvl with
              | Some bc -> lvl = base_lvl || c >= min_gain *. bc
              | None -> false
            in
            if keep_base then None
            else begin
              pr "  override %-9s -O%d -> -O%d (%.0f -> %.0f cyc/req%s)\n%!"
                name base_lvl lvl
                (Option.value (e2e name base_lvl) ~default:nan)
                c
                (if base_allowed then "" else "; guard: base level worse than -O0");
              Some (name, lvl)
            end)
      wls
  in
  if overrides = [] then begin
    pr "  no per-workload override beats the global level\n%!";
    (best, best_m)
  end
  else
    let final = { best with Rio.Bundle.b_overrides = overrides } in
    match score ~phase:"override" ~desc:"apply-overrides" final with
    | Trial_ok m -> (final, m)
    | o ->
        pr "  !! overridden bundle failed end-to-end (%s); keeping global\n%!"
          (outcome_str o);
        (best, best_m)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run ~quick ~out_path ~bundle_out () =
  arm_alarm ~quick;
  let wls =
    if quick then
      List.filter_map Suite.by_name
        [ "gzip"; "gcc"; "crafty"; "perlbmk"; "mesa"; "art" ]
    else Suite.all
  in
  let reqs_per_wl = if quick then 2 else 3 in
  let restarts = if quick then 1 else 3 in
  pr "\n=== Autotune: configuration-bundle search (%s mode) ===\n"
    (if quick then "quick" else "full");
  pr
    "(%d workloads x %d requests per trial; objective: geomean mean sim \
     cycles/request; every request output-checked against native)\n%!"
    (List.length wls) reqs_per_wl;
  let knobs = knob_space ~quick in
  let mk = Sweep.request_maker wls in
  let trials = ref [] in
  let memo : (int, outcome) Hashtbl.t = Hashtbl.create 64 in
  let memo_hits = ref 0 in
  let next_id = ref 0 in
  let score ~phase ~desc b =
    let dg = Rio.Bundle.digest b in
    match Hashtbl.find_opt memo dg with
    | Some o ->
        incr memo_hits;
        o
    | None ->
        let o = measure ~wls ~mk ~reqs_per_wl b in
        Hashtbl.replace memo dg o;
        incr next_id;
        trials :=
          {
            t_id = !next_id;
            t_phase = phase;
            t_desc = desc;
            t_digest = Printf.sprintf "%08x" dg;
            t_outcome = o;
          }
          :: !trials;
        pr "  %3d %-18s %-26s %s\n%!" !next_id phase desc (outcome_str o);
        o
  in
  let default_bundle =
    {
      Rio.Bundle.b_opts = Rio.Options.default;
      b_pool = Rio.Options.default_pool;
      b_overrides = [];
      b_provenance = Rio.Bundle.default_provenance;
    }
  in
  let default_m =
    match score ~phase:"baseline" ~desc:"defaults" default_bundle with
    | Trial_ok m -> m
    | o ->
        pr "!! the default bundle failed to measure: %s\n%!" (outcome_str o);
        exit 2
  in
  (* --- coordinate descent with a seeded random-restart ladder --- *)
  let global_best = ref default_bundle and global_best_m = ref default_m in
  let seed = ref 0x5eed in
  for r = 0 to restarts - 1 do
    let start, label =
      if r = 0 then (default_bundle, "from-defaults")
      else (random_bundle ~knobs seed default_bundle, "from-random")
    in
    let phase = Printf.sprintf "restart%d" r in
    pr "-- %s (%s)\n%!" phase label;
    match score ~phase ~desc:"start" start with
    | Trial_ok start_m ->
        let b, m = descend ~score ~knobs ~phase start start_m in
        if m.m_objective < !global_best_m.m_objective then begin
          global_best := b;
          global_best_m := m
        end
    | _ -> pr "  (start point unusable; rung skipped)\n%!"
  done;
  (* --- per-workload opt-level override pass --- *)
  pr "-- per-workload override pass (level sheet + single-engine guard)\n%!";
  let best, best_m = override_pass ~wls ~score !global_best !global_best_m in
  let improvement_pct =
    (1.0 -. (best_m.m_objective /. default_m.m_objective)) *. 100.0
  in
  (* --- report --- *)
  pr "\n%-9s %14s %14s %8s\n" "bench" "default" "tuned" "ratio";
  List.iter
    (fun (name, d) ->
      let t = List.assoc name best_m.m_per_wl in
      pr "%-9s %14.0f %14.0f %8.3f\n" name d t (t /. d))
    default_m.m_per_wl;
  pr "%-9s %14.0f %14.0f %8.3f\n" "geomean" default_m.m_objective
    best_m.m_objective
    (best_m.m_objective /. default_m.m_objective);
  pr "tuned bundle beats defaults by %.2f%% (objective: geomean mean sim \
      cycles/request)\n"
    improvement_pct;
  pr "makespan %d -> %d sim cycles; digest %08x\n%!" default_m.m_makespan
    best_m.m_makespan (Rio.Bundle.digest best);
  let trials = List.rev !trials in
  let count k =
    List.length (List.filter (fun t -> outcome_kind t.t_outcome = k) trials)
  in
  pr "%d trials (%d ok, %d invalid, %d diverged, %d failed), %d memo hits\n%!"
    (List.length trials) (count "ok") (count "invalid") (count "diverged")
    (count "failed") !memo_hits;
  (* --- ship the winner --- *)
  let stamp =
    let t = Unix.gmtime (Unix.gettimeofday ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec
  in
  let best =
    {
      best with
      Rio.Bundle.b_provenance =
        {
          Rio.Bundle.pv_created_by = "autotune";
          pv_created_at = stamp;
          pv_objective =
            Printf.sprintf
              "geomean mean sim cycles/request over %d workloads (%s mode)"
              (List.length wls)
              (if quick then "quick" else "full");
          pv_note =
            Printf.sprintf "%.0f vs default %.0f cycles/request (%.2f%% better)"
              best_m.m_objective default_m.m_objective improvement_pct;
        };
    }
  in
  (match Rio.Bundle.save bundle_out best with
  | Ok () -> pr "wrote %s\n%!" bundle_out
  | Error e ->
      pr "!! could not write %s: %s\n%!" bundle_out
        (Rio.Bundle.error_to_string e);
      exit 2);
  (* --- JSON datapoint --- *)
  let open Sweep in
  let knob_obj b =
    Obj
      (List.map (fun k -> (k.k_name, Str (k.k_get b))) knobs
      @ [
          ( "overrides",
            Obj
              (List.map
                 (fun (k, v) -> (k, Int v))
                 b.Rio.Bundle.b_overrides) );
        ])
  in
  write_json ~path:out_path
    (Obj
       [
         ("schema", Str "rio-autotune-v1");
         ("quick", Bool quick);
         ("workloads", Int (List.length wls));
         ("requests_per_workload", Int reqs_per_wl);
         ("objective", Str "geomean_mean_sim_cycles_per_request");
         ("default_objective", Float default_m.m_objective);
         ("tuned_objective", Float best_m.m_objective);
         ("improvement_pct", Float improvement_pct);
         ("default_makespan", Int default_m.m_makespan);
         ("tuned_makespan", Int best_m.m_makespan);
         ("bundle_digest", Str (Printf.sprintf "%08x" (Rio.Bundle.digest best)));
         ("bundle_file", Str bundle_out);
         ("tuned_knobs", knob_obj best);
         ("trials_total", Int (List.length trials));
         ("trials_ok", Int (count "ok"));
         ("trials_invalid", Int (count "invalid"));
         ("trials_diverged", Int (count "diverged"));
         ("trials_failed", Int (count "failed"));
         ("memo_hits", Int !memo_hits);
         ( "per_workload",
           Arr
             (List.map
                (fun (name, d) ->
                  let t = List.assoc name best_m.m_per_wl in
                  Obj
                    [
                      ("bench", Str name);
                      ("default_cycles", Float d);
                      ("tuned_cycles", Float t);
                      ("ratio", Float (t /. d));
                    ])
                default_m.m_per_wl) );
         ( "trials",
           Arr
             (List.map
                (fun t ->
                  Obj
                    [
                      ("id", Int t.t_id);
                      ("phase", Str t.t_phase);
                      ("move", Str t.t_desc);
                      ("digest", Str t.t_digest);
                      ("outcome", Str (outcome_kind t.t_outcome));
                      ( "objective",
                        match t.t_outcome with
                        | Trial_ok m -> Float m.m_objective
                        | _ -> Null );
                      ( "makespan",
                        match t.t_outcome with
                        | Trial_ok m -> Int m.m_makespan
                        | _ -> Null );
                      ( "host_s",
                        match t.t_outcome with
                        | Trial_ok m -> Float m.m_host_s
                        | Trial_divergent (_, s) -> Float s
                        | _ -> Null );
                      ( "detail",
                        match t.t_outcome with
                        | Trial_ok _ -> Null
                        | Trial_invalid e | Trial_failed e -> Str e
                        | Trial_divergent (n, _) ->
                            Str (Printf.sprintf "%d diverged" n) );
                    ])
                trials) );
       ]);
  (* --- hard gates --- *)
  if count "diverged" > 0 || count "failed" > 0 then begin
    pr "!! %d diverged and %d failed trials (must be zero)\n%!"
      (count "diverged") (count "failed");
    exit 1
  end;
  if best_m.m_objective > default_m.m_objective then begin
    pr "!! tuned objective %.0f is worse than the default %.0f\n%!"
      best_m.m_objective default_m.m_objective;
    exit 1
  end;
  if (not quick) && improvement_pct < 3.0 then begin
    pr "!! improvement %.2f%% below the 3%% full-mode target\n%!"
      improvement_pct;
    exit 1
  end;
  ignore (Unix.alarm 0)
