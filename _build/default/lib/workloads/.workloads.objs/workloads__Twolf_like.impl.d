lib/workloads/twolf_like.ml: Asm Workload
