(** Domain-parallel serving pool (DESIGN.md §6.5).

    The pool owns N worker domains.  Each worker keeps {e warm}
    long-lived {!Engine.t} instances, one per workload key: the code
    cache, fragment index, and traces built while serving one request
    survive into the next, so steady-state requests skip almost all
    block building.  Instances never migrate between domains.

    Requests are sharded to a home worker (round-robin by default,
    key-hash affinity optionally) and pushed onto that worker's deque.
    An idle worker first drains its own deque in arrival order, then
    steals from the {e back} of a victim's deque — the request farthest
    from the victim's service horizon — so stealing disturbs the
    victim's imminent work least.  A stolen request cold-boots (or
    warms) an instance on the {e thief}'s domain.

    All queues and counters sit behind one pool mutex: requests are
    coarse (each runs a whole workload to completion, millions of
    simulated cycles), so queue operations are a vanishing fraction of
    the work and a single lock keeps the invariants easy to audit.
    Lock-ordering discipline: the pool mutex is never held while a
    request executes. *)

(* ------------------------------------------------------------------ *)
(* Deques                                                             *)
(* ------------------------------------------------------------------ *)

module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = Array.make 16 None; head = 0; len = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  (* owner end: oldest request, preserving arrival order *)
  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.head) in
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  (* thief end: newest request *)
  let pop_back d =
    if d.len = 0 then None
    else begin
      let idx = (d.head + d.len - 1) mod Array.length d.buf in
      let x = d.buf.(idx) in
      d.buf.(idx) <- None;
      d.len <- d.len - 1;
      x
    end
end

(* ------------------------------------------------------------------ *)
(* Requests and results                                               *)
(* ------------------------------------------------------------------ *)

type boot = {
  boot_machine : unit -> Vm.Machine.t;
      (** create a machine with the program image cold-loaded
          (see {!Asm.Image.load_cold}); no thread yet *)
  boot_entry : int;
  boot_stack_top : int;
  boot_restore : Vm.Machine.t -> zeroed:(int * int) list -> (int * int) list;
      (** re-blit image slices over just-zeroed pages
          (see {!Asm.Image.restore}) *)
  boot_opts : Options.t;
  boot_client : unit -> Types.client;
      (** fresh client per instance: client state must be per-domain *)
}

type request = {
  req_key : string;        (** workload key; selects the boot and the warm instance *)
  req_seed : int;
  req_input : int list;    (** full input stream for this request *)
  req_expect : int list option;  (** expected output (native reference), if known *)
}

type result = {
  res_key : string;
  res_seed : int;
  res_worker : int;        (** domain that executed the request *)
  res_home : int;          (** domain the request was sharded to *)
  res_stolen : bool;
  res_warm : bool;         (** served by an already-warm instance *)
  res_output : int list;
  res_reason : Engine.stop_reason;
  res_cycles : int;        (** simulated cycles for this request *)
  res_insns : int;
  res_blocks_built : int;  (** basic blocks built during this request *)
  res_secs : float;        (** host wall-clock seconds *)
  res_ok : bool;           (** exited normally and matched [req_expect] *)
}

type snapshot = {
  snap_domains : int;
  snap_submitted : int;
  snap_completed : int;
  snap_steals : int;
  snap_warm_hits : int;
  snap_cold_boots : int;
  snap_busy_cycles : int array;  (** per-worker simulated cycles served *)
  snap_stats : Stats.t;          (** merge over all live warm instances *)
}

(* ------------------------------------------------------------------ *)

type worker = {
  w_id : int;
  w_deque : request Deque.t;            (* under pool mutex *)
  mutable w_busy_cycles : int;          (* under pool mutex *)
  w_warm : (string, Engine.t) Hashtbl.t;
      (* touched only by the owning domain while serving; readable by
         others only when the pool is quiescent (after [drain]) *)
}

type t = {
  mu : Mutex.t;
  work_cv : Condition.t;    (* workers: new work or shutdown *)
  space_cv : Condition.t;   (* submitters: in-flight fell below cap *)
  done_cv : Condition.t;    (* drainers: completed caught up *)
  workers : worker array;
  boots : (string * boot) list;   (* immutable after create *)
  max_inflight : int;
  affinity : bool;
  mutable next_home : int;
  mutable submitted : int;
  mutable completed : int;
  mutable steals : int;
  mutable warm_hits : int;
  mutable cold_boots : int;
  mutable results : result list;  (* reversed completion order *)
  mutable stopping : bool;
  mutable handles : unit Domain.t array;
}

let domains pool = Array.length pool.workers

(* ------------------------------------------------------------------ *)
(* Serving one request (no pool lock held)                            *)
(* ------------------------------------------------------------------ *)

let serve pool (w : worker) (r : request) ~home ~stolen : result =
  let boot =
    match List.assoc_opt r.req_key pool.boots with
    | Some b -> b
    | None -> invalid_arg ("Pool: no boot registered for key " ^ r.req_key)
  in
  let t0 = Unix.gettimeofday () in
  let warm, rt =
    match Hashtbl.find_opt w.w_warm r.req_key with
    | Some rt ->
        Engine.reset_for_reuse rt ~restore:boot.boot_restore;
        (true, rt)
    | None ->
        let m = boot.boot_machine () in
        let rt =
          Engine.create ~opts:boot.boot_opts ~client:(boot.boot_client ()) m
        in
        Hashtbl.replace w.w_warm r.req_key rt;
        (false, rt)
  in
  let m = Engine.machine rt in
  ignore
    (Vm.Machine.add_thread m ~entry:boot.boot_entry
       ~stack_top:boot.boot_stack_top);
  Vm.Machine.set_input m r.req_input;
  let b0 = (Engine.stats rt).Stats.blocks_built in
  let o = Engine.run rt in
  let output = Vm.Machine.output m in
  let ok =
    o.Engine.reason = Engine.All_exited
    && match r.req_expect with None -> true | Some e -> output = e
  in
  (* a request that didn't exit cleanly leaves cache state we no longer
     trust; drop the instance so the next request cold-boots *)
  if o.Engine.reason <> Engine.All_exited then Hashtbl.remove w.w_warm r.req_key;
  {
    res_key = r.req_key;
    res_seed = r.req_seed;
    res_worker = w.w_id;
    res_home = home;
    res_stolen = stolen;
    res_warm = warm;
    res_output = output;
    res_reason = o.Engine.reason;
    res_cycles = o.Engine.cycles;
    res_insns = o.Engine.insns;
    res_blocks_built = (Engine.stats rt).Stats.blocks_built - b0;
    res_secs = Unix.gettimeofday () -. t0;
    res_ok = ok;
  }

(* ------------------------------------------------------------------ *)
(* Worker loop                                                        *)
(* ------------------------------------------------------------------ *)

let rec worker_loop pool (w : worker) : unit =
  Mutex.lock pool.mu;
  let job =
    match Deque.pop_front w.w_deque with
    | Some r -> Some (r, w.w_id, false)
    | None ->
        let n = Array.length pool.workers in
        let rec scan k =
          if k >= n - 1 then None
          else
            let victim = pool.workers.((w.w_id + 1 + k) mod n) in
            match Deque.pop_back victim.w_deque with
            | Some r -> Some (r, victim.w_id, true)
            | None -> scan (k + 1)
        in
        scan 0
  in
  match job with
  | Some (r, home, stolen) ->
      if stolen then pool.steals <- pool.steals + 1;
      Mutex.unlock pool.mu;
      let res = serve pool w r ~home ~stolen in
      Mutex.lock pool.mu;
      pool.completed <- pool.completed + 1;
      w.w_busy_cycles <- w.w_busy_cycles + res.res_cycles;
      if res.res_warm then pool.warm_hits <- pool.warm_hits + 1
      else pool.cold_boots <- pool.cold_boots + 1;
      pool.results <- res :: pool.results;
      Condition.signal pool.space_cv;
      if pool.completed = pool.submitted then Condition.broadcast pool.done_cv;
      Mutex.unlock pool.mu;
      worker_loop pool w
  | None ->
      if pool.stopping then Mutex.unlock pool.mu
      else begin
        Condition.wait pool.work_cv pool.mu;
        Mutex.unlock pool.mu;
        worker_loop pool w
      end

(* ------------------------------------------------------------------ *)
(* Public API                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(max_inflight = 64) ?(affinity = false) ~domains
    ~(boots : (string * boot) list) () : t =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if max_inflight < 1 then invalid_arg "Pool.create: max_inflight must be >= 1";
  let workers =
    Array.init domains (fun i ->
        {
          w_id = i;
          w_deque = Deque.create ();
          w_busy_cycles = 0;
          w_warm = Hashtbl.create 8;
        })
  in
  let pool =
    {
      mu = Mutex.create ();
      work_cv = Condition.create ();
      space_cv = Condition.create ();
      done_cv = Condition.create ();
      workers;
      boots;
      max_inflight;
      affinity;
      next_home = 0;
      submitted = 0;
      completed = 0;
      steals = 0;
      warm_hits = 0;
      cold_boots = 0;
      results = [];
      stopping = false;
      handles = [||];
    }
  in
  pool.handles <-
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop pool w)) workers;
  pool

let submit pool (r : request) : unit =
  Mutex.lock pool.mu;
  if pool.stopping then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while pool.submitted - pool.completed >= pool.max_inflight do
    Condition.wait pool.space_cv pool.mu
  done;
  let home =
    if pool.affinity then Hashtbl.hash r.req_key mod Array.length pool.workers
    else begin
      let h = pool.next_home in
      pool.next_home <- (h + 1) mod Array.length pool.workers;
      h
    end
  in
  Deque.push_back pool.workers.(home).w_deque r;
  pool.submitted <- pool.submitted + 1;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mu

let drain pool : result list =
  Mutex.lock pool.mu;
  while pool.completed < pool.submitted do
    Condition.wait pool.done_cv pool.mu
  done;
  let rs = List.rev pool.results in
  pool.results <- [];
  Mutex.unlock pool.mu;
  rs

(** Zero the throughput counters between measurement passes.  Call only
    when drained (no request in flight). *)
let reset_counters pool : unit =
  Mutex.lock pool.mu;
  if pool.completed <> pool.submitted then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.reset_counters: requests still in flight"
  end;
  pool.submitted <- 0;
  pool.completed <- 0;
  pool.steals <- 0;
  pool.warm_hits <- 0;
  pool.cold_boots <- 0;
  pool.results <- [];
  Array.iter (fun w -> w.w_busy_cycles <- 0) pool.workers;
  Mutex.unlock pool.mu

(** Counter snapshot plus runtime stats merged across every live warm
    instance.  The merged stats are coherent only when the pool is
    quiescent (after {!drain}); instances dropped after failed requests
    are not represented. *)
let stats pool : snapshot =
  Mutex.lock pool.mu;
  let snap_stats =
    Array.fold_left
      (fun acc w ->
        Hashtbl.fold (fun _ rt acc -> Stats.merge acc (Engine.stats rt)) w.w_warm
          acc)
      (Stats.create ()) pool.workers
  in
  let s =
    {
      snap_domains = Array.length pool.workers;
      snap_submitted = pool.submitted;
      snap_completed = pool.completed;
      snap_steals = pool.steals;
      snap_warm_hits = pool.warm_hits;
      snap_cold_boots = pool.cold_boots;
      snap_busy_cycles = Array.map (fun w -> w.w_busy_cycles) pool.workers;
      snap_stats;
    }
  in
  Mutex.unlock pool.mu;
  s

let shutdown pool : unit =
  Mutex.lock pool.mu;
  pool.stopping <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mu;
  Array.iter Domain.join pool.handles;
  pool.handles <- [||]
