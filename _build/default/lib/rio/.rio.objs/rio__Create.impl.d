lib/rio/create.ml: Insn Instr Isa Operand
