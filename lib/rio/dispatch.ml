(** The dispatcher: Figure 1 of the paper.

    {v
    start → basic block builder → (trace selector) → code cache
              ↑                                        |
              └──── context switch ←── exit stub ←─────┘
                    (or stay in cache: direct link / indirect lookup)
    v}

    One dispatcher drives each application thread; code caches and all
    dispatch state are thread-private (paper §2). *)

open Isa
open Types

(* ------------------------------------------------------------------ *)
(* Trace heads                                                        *)
(* ------------------------------------------------------------------ *)

let is_head (ts : thread_state) tag =
  Hashtbl.mem ts.head_counters tag || Hashtbl.mem ts.marked_heads tag

(** Promote [tag] to trace-head status: it loses its in-cache lookup
    entry and its incoming links, so every future execution passes
    through the dispatcher and bumps its counter. *)
let make_head (rt : runtime) (ts : thread_state) tag =
  if not (is_head ts tag) then begin
    Hashtbl.replace ts.head_counters tag 0;
    rt.stats.Stats.trace_head_promotions <- rt.stats.Stats.trace_head_promotions + 1;
    (match Hashtbl.find_opt ts.ibl tag with
     | Some f when f.kind = Bb -> Hashtbl.remove ts.ibl tag
     | _ -> ());
    match Hashtbl.find_opt ts.bbs tag with
    | Some frag -> List.iter (Emit.unlink rt) frag.incoming
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Basic block building                                               *)
(* ------------------------------------------------------------------ *)

(* Decode the application code starting at [tag]: all instructions up
   to and including the first CTI (or up to the size cap).  Returns the
   per-instruction (addr, len) list, whether a CTI ended the block, and
   the address just past the block. *)
let scan_block (rt : runtime) tag :
    (int * int) list * [ `Cti | `Capped ] * int =
  let fetch = Vm.Memory.fetch (Vm.Machine.mem rt.machine) in
  let max_insns = rt.opts.Options.max_bb_insns in
  let rec go addr n acc =
    match Decode.opcode_eflags fetch addr with
    | Error e ->
        rio_error "bad application code at 0x%x: %s" addr
          (Decode.error_to_string e)
    | Ok (op, len) ->
        let acc = (addr, len) :: acc in
        if Opcode.is_cti op then (List.rev acc, `Cti, addr + len)
        else if n + 1 >= max_insns then (List.rev acc, `Capped, addr + len)
        else go (addr + len) (n + 1) acc
  in
  go tag 0 []

(* Build the client-view IL for a scanned block.  Without a client
   hook, non-CTI instructions are kept as a single Level-0 bundle and
   only the final CTI is decoded (the paper's two-Instr fast path);
   with a hook, instructions are split to Level 1 so the client can
   walk them. *)
let block_il (rt : runtime) (pieces : (int * int) list) (ends : [ `Cti | `Capped ]) :
    Instrlist.t =
  let mem = Vm.Machine.mem rt.machine in
  let fetch = Vm.Memory.fetch mem in
  let grab addr len = Bytes.init len (fun k -> Char.chr (fetch (addr + k))) in
  let il = Instrlist.create () in
  let with_hook = rt.client.basic_block <> None && not rt.client_quarantined in
  let n = List.length pieces in
  let body, cti =
    match ends with
    | `Cti ->
        let rec split k = function
          | [] -> ([], None)
          | [ last ] when k = n - 1 -> ([], Some last)
          | x :: tl ->
              let b, c = split (k + 1) tl in
              (x :: b, c)
        in
        split 0 pieces
    | `Capped -> (pieces, None)
  in
  if with_hook then
    List.iter
      (fun (addr, len) -> Instrlist.append il (Instr.of_raw ~addr (grab addr len)))
      body
  else if body <> [] then begin
    let first_addr = fst (List.hd body) in
    let last_addr, last_len = List.nth body (List.length body - 1) in
    let total = last_addr + last_len - first_addr in
    Instrlist.append il (Instr.of_bundle ~addr:first_addr (grab first_addr total))
  end;
  (match cti with
   | Some (addr, len) -> (
       let raw = grab addr len in
       match Decode.full (Decode.fetch_bytes raw) 0 with
       | Error e -> rio_error "bad CTI at 0x%x: %s" addr (Decode.error_to_string e)
       | Ok (insn0, _) ->
           (* re-resolve pc-relative targets against the true address *)
           let f a = Char.code (Bytes.get raw (a - addr)) in
           let insn, _ = Decode.full_exn f addr in
           ignore insn0;
           Instrlist.append il (Instr.of_decoded ~addr ~raw insn))
   | None -> ());
  il

(* After mangling, guarantee the block's IL ends by leaving the
   fragment: a trailing conditional branch gets an explicit jmp to its
   fall-through; a capped block gets a jmp to the next instruction. *)
let seal_il (il : Instrlist.t) ~(fallthrough : int) : unit =
  match Instrlist.last il with
  | None -> rio_error "empty block"
  | Some last -> (
      match Instr.get_opcode last with
      | Opcode.Jcc _ -> Instrlist.append il (Create.jmp fallthrough)
      | Opcode.Jmp | Opcode.Hlt -> ()
      | _ -> Instrlist.append il (Create.jmp fallthrough))

let build_bb (rt : runtime) (ts : thread_state) tag : fragment =
  let pieces, ends, block_end = scan_block rt tag in
  (* watch the source code so writes to it trigger fragment flushes *)
  Vm.Memory.watch_code (Vm.Machine.mem rt.machine) ~addr:tag ~len:(block_end - tag);
  let il = block_il rt pieces ends in
  charge rt
    (rt.opts.Options.costs.Options.bb_build_base
    + (List.length pieces * rt.opts.Options.costs.Options.bb_build_per_insn));
  let il =
    match rt.client.basic_block with
    | Some hook ->
        Guard.protect_il rt ~hook:"basic_block" il (fun il ->
            hook { rt; ts } ~tag il)
    | None -> il
  in
  Mangle.mangle_il ~tid:ts.ts_tid il;
  seal_il il ~fallthrough:block_end;
  let frag =
    Emit.emit_fragment rt ts ~kind:Bb ~tag ~src_ranges:[ (tag, block_end) ] il
  in
  rt.stats.Stats.blocks_built <- rt.stats.Stats.blocks_built + 1;
  if not (is_head ts tag) then Hashtbl.replace ts.ibl tag frag;
  log_flow rt "build bb 0x%x" tag;
  frag

(* ------------------------------------------------------------------ *)
(* Trace building                                                     *)
(* ------------------------------------------------------------------ *)

type pending =
  | P_jcc of Cond.t * int * int  (* cond, taken target, fall-through *)
  | P_jmp of int
  | P_ind of ind_kind
  | P_halt
  | P_start                      (* no block stitched yet *)

(* The trace builder's private working state, attached to ts.tracegen
   via closures over this record. *)
type tg_state = {
  tg : tracegen;
  mutable pending : pending;
  mutable checks : Instr.t list;  (* jne instrs of inline checks, for flags fixup *)
}

let tg_table : (int, tg_state) Hashtbl.t = Hashtbl.create 8
(* keyed by thread id; a thread has at most one trace generation going *)

let start_tracegen (rt : runtime) (ts : thread_state) head =
  let tg =
    { tg_head = head; tg_tags = []; tg_il = Instrlist.create (); tg_insns = 0 }
  in
  ts.tracegen <- Some tg;
  Hashtbl.replace tg_table ts.ts_tid { tg; pending = P_start; checks = [] };
  log_flow rt "start trace 0x%x" head

(* Splice the client-view IL of block [tag]'s bb fragment into the
   growing trace, returning the new pending CTI. *)
let stitch_block (rt : runtime) (ts : thread_state) (st : tg_state) tag : unit =
  let frag =
    match Hashtbl.find_opt ts.bbs tag with
    | Some f -> f
    | None -> build_bb rt ts tag
  in
  let il = Emit.decode_fragment_il rt frag in
  (* peel the trailing exit structure *)
  let target_of (i : Instr.t) =
    match Insn.src (Instr.get_insn i) 0 with
    | Operand.Target t -> t
    | _ -> rio_error "trace stitch: malformed exit"
  in
  let last = Option.get (Instrlist.last il) in
  let pending =
    match Instr.get_opcode last with
    | Opcode.Hlt ->
        Instrlist.remove il last;
        P_halt
    | Opcode.Jmp -> (
        let t = target_of last in
        Instrlist.remove il last;
        match ind_kind_of_token t with
        | Some k -> P_ind k
        | None -> (
            (* is the (new) last instruction a conditional exit? *)
            match Instrlist.last il with
            | Some prev
              when (not (Instr.is_bundle prev))
                   && (match Instr.get_opcode prev with
                      | Opcode.Jcc _ -> true
                      | _ -> false) ->
                let c =
                  match Instr.get_opcode prev with
                  | Opcode.Jcc c -> c
                  | _ -> assert false
                in
                let taken = target_of prev in
                Instrlist.remove il prev;
                P_jcc (c, taken, t)
            | _ -> P_jmp t))
    | _ -> rio_error "trace stitch: block 0x%x does not end in an exit" tag
  in
  st.tg.tg_insns <- st.tg.tg_insns + Instrlist.length il;
  Instrlist.append_all ~dst:st.tg.tg_il il;
  st.tg.tg_tags <- tag :: st.tg.tg_tags;
  st.pending <- pending

(* Resolve the pending CTI knowing execution continued at [next]. *)
let resolve_pending (ts : thread_state) (st : tg_state) ~next : unit =
  match st.pending with
  | P_start -> ()
  | P_halt -> rio_error "trace continued past hlt"
  | P_jmp t ->
      if t <> next then rio_error "trace stitch: jmp to 0x%x but executed 0x%x" t next
  | P_jcc (c, taken, ft) ->
      let exit_instr =
        if next = taken then Create.jcc (Cond.invert c) ft
        else if next = ft then Create.jcc c taken
        else rio_error "trace stitch: jcc targets 0x%x/0x%x but executed 0x%x" taken ft next
      in
      st.tg.tg_insns <- st.tg.tg_insns + 1;
      Instrlist.append st.tg.tg_il exit_instr
  | P_ind k ->
      (* inline the observed target with a check; flags handling is
         fixed up at finalize time when the whole trace is known *)
      let instrs =
        Mangle.inline_check ~tid:ts.ts_tid ~expected:next ~kind:k ~flags_live:false
      in
      List.iter
        (fun i ->
          st.tg.tg_insns <- st.tg.tg_insns + 1;
          Instrlist.append st.tg.tg_il i)
        instrs;
      (match List.rev instrs with
       | jne :: _ -> st.checks <- jne :: st.checks
       | [] -> assert false)

(* Materialize the final pending CTI as trace exits. *)
let finalize_pending (st : tg_state) : unit =
  let app i = Instrlist.append st.tg.tg_il i in
  match st.pending with
  | P_start -> rio_error "empty trace"
  | P_halt -> app (Create.of_insn (Insn.mk_hlt ()))
  | P_jmp t -> app (Create.jmp t)
  | P_jcc (c, taken, ft) ->
      app (Create.jcc c taken);
      app (Create.jmp ft)
  | P_ind k -> app (Create.jmp (ind_token k))

(* For every inline check inserted without flags preservation, scan
   forward: if the application flags are live at the check, bracket it
   with save/restore and attach the stub restore. *)
let fixup_check_flags (rt : runtime) (ts : thread_state) (st : tg_state) : unit =
  let il = st.tg.tg_il in
  let fslot = Mangle.abs_slot ~tid:ts.ts_tid slot_eflags in
  List.iter
    (fun (jne : Instr.t) ->
      (* the check is [cmp; jne]; flags are live if anything after the
         jne reads them before writing *)
      let after = jne.Instr.next in
      if
        rt.opts.Options.always_save_flags
        || not (Flags_analysis.dead_after after)
      then begin
        let cmp = Option.get jne.Instr.prev in
        Instrlist.insert_before il cmp (Create.pushf ());
        Instrlist.insert_before il cmp (Create.pop fslot);
        Instrlist.insert_after il jne (Create.popf ());
        Instrlist.insert_after il jne (Create.push fslot);
        let stub = Instrlist.create () in
        Instrlist.append stub (Create.push fslot);
        Instrlist.append stub (Create.popf ());
        jne.Instr.note <- Instr.Any_note (Stub_note (stub, false));
        st.tg.tg_insns <- st.tg.tg_insns + 4
      end)
    st.checks

let finalize_trace (rt : runtime) (ts : thread_state) (st : tg_state) : fragment =
  finalize_pending st;
  fixup_check_flags rt ts st;
  let head = st.tg.tg_head in
  let il = st.tg.tg_il in
  (* the client sees the completely processed trace (paper §3.3);
     instructions are fully decoded with raw bits valid (Level 3) *)
  Instrlist.decode_to il Level.L3;
  let il =
    match rt.client.trace_hook with
    | Some hook ->
        Guard.protect_il rt ~hook:"trace" il (fun il ->
            hook { rt; ts } ~tag:head il)
    | None -> il
  in
  charge_opt rt
    (Instrlist.length il * rt.opts.Options.costs.Options.trace_build_per_insn);
  Mangle.mangle_il ~tid:ts.ts_tid il;
  let src_ranges =
    List.concat_map
      (fun tag ->
        match Hashtbl.find_opt ts.bbs tag with
        | Some f -> f.src_ranges
        | None -> [])
      st.tg.tg_tags
  in
  let frag = Emit.emit_fragment rt ts ~kind:Trace ~tag:head ~src_ranges il in
  rt.stats.Stats.traces_built <- rt.stats.Stats.traces_built + 1;
  (* the trace shadows the head's bb: lookups prefer traces, the ibl
     entry moves to the trace, and the bb's links are already severed
     (it is a head).  Targets of the trace's direct exits become heads. *)
  Hashtbl.replace ts.ibl head frag;
  Array.iter
    (fun e ->
      match e.e_kind with
      | Exit_direct ->
          if
            e.target_tag <> head
            && not (Hashtbl.mem ts.traces e.target_tag)
          then make_head rt ts e.target_tag
      | Exit_indirect _ -> ())
    frag.exits;
  ts.tracegen <- None;
  Hashtbl.remove tg_table ts.ts_tid;
  log_flow rt "built trace 0x%x (%d blocks)" head (List.length st.tg.tg_tags);
  frag

(* Default end-of-trace test (paper §3.5: stop at a backward branch —
   approximated as reaching another trace head — or an existing trace). *)
let default_end (rt : runtime) (ts : thread_state) (st : tg_state) ~next =
  Hashtbl.mem ts.traces next
  || is_head ts next
  || List.length st.tg.tg_tags >= rt.opts.Options.max_trace_blocks

(* One dispatcher step while generating a trace.  Returns the fragment
   to execute next (always the bb for [next], unlinked). *)
let tracegen_step (rt : runtime) (ts : thread_state) ~next : fragment option =
  let st = Hashtbl.find tg_table ts.ts_tid in
  let should_end =
    if st.pending = P_start then false (* always take the head block *)
    else if st.pending = P_halt then true
    else
      match rt.client.end_trace with
      | None -> default_end rt ts st ~next
      | Some hook -> (
          match
            Guard.protect_end_trace rt ~hook:"end_trace" ~default:Default_end
              (fun () -> hook { rt; ts } ~trace_tag:st.tg.tg_head ~next_tag:next)
          with
          | End_trace -> true
          | Continue_trace -> false
          | Default_end -> default_end rt ts st ~next)
  in
  if should_end || st.pending = P_halt then begin
    ignore (finalize_trace rt ts st);
    None (* re-dispatch [next] normally *)
  end
  else begin
    resolve_pending ts st ~next;
    stitch_block rt ts st next;
    if st.pending = P_halt then begin
      (* block ends the program: close the trace now *)
      ignore (finalize_trace rt ts st)
    end;
    (* execute the constituent block, unlinked, so control returns to
       the dispatcher to observe where execution goes *)
    let frag =
      match Hashtbl.find_opt ts.bbs next with
      | Some f -> f
      | None -> build_bb rt ts next
    in
    Array.iter (fun e -> Emit.unlink rt e) frag.exits;
    Some frag
  end

(* ------------------------------------------------------------------ *)
(* The dispatcher proper                                              *)
(* ------------------------------------------------------------------ *)

(* Push a value on the application stack of [ts]'s thread. *)
let push_app (rt : runtime) (ts : thread_state) v =
  let t = ts.thread in
  let sp = (Vm.Machine.get_reg t Reg.Esp - 4) land 0xFFFF_FFFF in
  Vm.Machine.set_reg t Reg.Esp sp;
  Vm.Memory.write_u32 (Vm.Machine.mem rt.machine) sp v

(* Deliver one pending signal, if any, at this safe point: push the
   interrupted application pc and redirect to the handler (all in app
   terms; the handler's code itself runs out of the code cache).
   Handlers outside application space are runtime damage (S34) — they
   are dropped, never delivered. *)
let rec deliver_signals (rt : runtime) (ts : thread_state) =
  match ts.thread.Vm.Machine.pending_signals with
  | [] -> ()
  | h :: rest ->
      ts.thread.Vm.Machine.pending_signals <- rest;
      if not (is_app_addr h) then begin
        rt.stats.Stats.spurious_signals_dropped <-
          rt.stats.Stats.spurious_signals_dropped + 1;
        log_flow rt "drop spurious signal -> 0x%x" h;
        deliver_signals rt ts
      end
      else begin
        push_app rt ts ts.next_tag;
        ts.next_tag <- h;
        rt.stats.Stats.signals_delivered <- rt.stats.Stats.signals_delivered + 1;
        log_flow rt "deliver signal -> 0x%x" h
      end

(* Look up (or create) the fragment to run for [tag] outside trace
   generation, honouring trace-head counters. *)
let fragment_for_normal (rt : runtime) (ts : thread_state) tag : fragment =
  match Hashtbl.find_opt ts.traces tag with
  | Some f ->
      log_flow rt "enter trace 0x%x" tag;
      f
  | None ->
      let frag =
        match Hashtbl.find_opt ts.bbs tag with
        | Some f -> f
        | None -> build_bb rt ts tag
      in
      if is_head ts tag && rt.opts.Options.enable_traces then begin
        let c = 1 + Option.value (Hashtbl.find_opt ts.head_counters tag) ~default:0 in
        Hashtbl.replace ts.head_counters tag c;
        if c >= rt.opts.Options.trace_threshold && ts.tracegen = None then begin
          start_tracegen rt ts tag;
          match tracegen_step rt ts ~next:tag with
          | Some f -> f
          | None -> frag
        end
        else frag
      end
      else frag

(* Full dispatch: trace generation first, then normal lookup.  Signal
   delivery happens once per safe point in the quantum loop, before
   this is called. *)
let rec fragment_for (rt : runtime) (ts : thread_state) : fragment =
  let tag = ts.next_tag in
  match ts.tracegen with
  | Some _ -> (
      match tracegen_step rt ts ~next:tag with
      | Some frag -> frag
      | None ->
          (* trace was finalized; dispatch [tag] normally (it may even
             start another trace) *)
          fragment_for rt ts)
  | None -> fragment_for_normal rt ts tag

(* ------------------------------------------------------------------ *)
(* Recovery ladder (S34)                                              *)
(* ------------------------------------------------------------------ *)

(* Discard an in-progress trace generation (used when a constituent
   block turned out to be damaged mid-stitch). *)
let abort_tracegen (rt : runtime) (ts : thread_state) =
  match ts.tracegen with
  | None -> ()
  | Some _ ->
      ts.tracegen <- None;
      Hashtbl.remove tg_table ts.ts_tid;
      log_flow rt "abort trace generation"

(** Graceful degradation for a damaged [tag], escalating one rung per
    detection: re-emit the fragment → flush every fragment built from
    its source ranges → request flush-the-world → demote the tag to
    permanent pure emulation.  Each rung strictly reduces how much the
    bad state can recur, so retries are bounded. *)
let recover_tag (rt : runtime) (ts : thread_state) ~tag ~(reason : string) :
    unit =
  rt.stats.Stats.faults_detected <- rt.stats.Stats.faults_detected + 1;
  let rung = Option.value (Hashtbl.find_opt rt.recover_attempts tag) ~default:0 in
  Hashtbl.replace rt.recover_attempts tag (rung + 1);
  let frags_of_tag () =
    List.filter_map (fun tbl -> Hashtbl.find_opt tbl tag) [ ts.traces; ts.bbs ]
  in
  let delete_tag () =
    List.iter
      (fun f -> if not f.deleted then Emit.delete_fragment rt ts f)
      (frags_of_tag ())
  in
  match rung with
  | 0 ->
      rt.stats.Stats.recover_reemit <- rt.stats.Stats.recover_reemit + 1;
      log_flow rt "recover 0x%x [re-emit]: %s" tag reason;
      delete_tag ()
  | 1 ->
      rt.stats.Stats.recover_flush_frag <- rt.stats.Stats.recover_flush_frag + 1;
      log_flow rt "recover 0x%x [flush-fragment]: %s" tag reason;
      let ranges =
        match List.concat_map (fun f -> f.src_ranges) (frags_of_tag ()) with
        | [] -> [ (tag, tag + 1) ]
        | rs -> rs
      in
      ignore (Emit.flush_ranges rt ts ranges)
  | 2 ->
      rt.stats.Stats.recover_flush_world <- rt.stats.Stats.recover_flush_world + 1;
      log_flow rt "recover 0x%x [flush-world]: %s" tag reason;
      delete_tag ();
      (* the full flush waits for the globally safe point the quantum
         loop already honours for capacity flushes *)
      rt.flush_pending <- true
  | _ ->
      rt.stats.Stats.recover_emulate <- rt.stats.Stats.recover_emulate + 1;
      log_flow rt "recover 0x%x [emulate-only]: %s" tag reason;
      delete_tag ();
      Hashtbl.replace rt.emulate_only tag ()

(* Run the auditor and heal every violation it reports, escalating the
   offender's ladder rung on each pass.  Deletion removes the offender
   from the audited set, so this converges; the iteration bound is a
   backstop only. *)
let audit_and_heal (rt : runtime) : unit =
  let rec go n =
    if n < 16 then
      match Audit.run rt with
      | Ok () -> ()
      | Error (f, msg) ->
          (match
             List.find_opt (fun ts -> ts.ts_tid = f.f_tid) rt.thread_states
           with
          | Some fts -> recover_tag rt fts ~tag:f.tag ~reason:msg
          | None ->
              rt.stats.Stats.faults_detected <-
                rt.stats.Stats.faults_detected + 1;
              rt.stats.Stats.recover_flush_world <-
                rt.stats.Stats.recover_flush_world + 1;
              rt.flush_pending <- true);
          go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Exit handling and the per-thread quantum loop                      *)
(* ------------------------------------------------------------------ *)

type quantum_result = Q_budget | Q_thread_done | Q_fault of string

(* Handle a direct exit: set next_tag, apply head heuristics, and link
   the exit to its target fragment when allowed. *)
let handle_direct_exit (rt : runtime) (ts : thread_state) (e : exit_) =
  let target = e.target_tag in
  ts.next_tag <- target;
  let owner = match e.e_owner with Some f -> f | None -> rio_error "orphan exit" in
  (* backward direct branches identify loop heads (Dynamo's heuristic) *)
  if
    rt.opts.Options.enable_traces
    && owner.kind = Bb
    && target <= owner.tag
    && not (Hashtbl.mem ts.traces target)
  then make_head rt ts target;
  (* lazy linking: once the target fragment exists, patch the branch *)
  if
    rt.opts.Options.link_direct
    && ts.tracegen = None
    && (not owner.deleted)
    && e.linked = None
  then begin
    let target_frag =
      match Hashtbl.find_opt ts.traces target with
      | Some f -> Some f
      | None -> (
          match Hashtbl.find_opt ts.bbs target with
          | Some f when not (is_head ts target) -> Some f
          | _ -> None)
    in
    match target_frag with
    | Some f when not f.deleted -> Emit.link rt e f
    | _ -> ()
  end

(* Handle an indirect exit: consult the in-cache lookup table.  A hit
   continues in the cache (no context switch); a miss (or disabled
   in-cache lookup) pays the full context switch and dispatches. *)
let handle_indirect_exit (rt : runtime) (ts : thread_state) :
    [ `Stay of fragment | `Dispatch ] =
  let mem = Vm.Machine.mem rt.machine in
  let target = Vm.Memory.read_u32 mem (tls_addr ~tid:ts.ts_tid ~slot:slot_ibl_target) in
  ts.next_tag <- target;
  if rt.opts.Options.link_indirect && ts.tracegen = None then begin
    (* the in-cache hashtable lookup *)
    rt.stats.Stats.ibl_lookups <- rt.stats.Stats.ibl_lookups + 1;
    charge rt rt.opts.Options.costs.Options.ibl_lookup;
    match Hashtbl.find_opt ts.ibl target with
    | Some f when not f.deleted ->
        log_flow rt "ibl hit 0x%x" target;
        `Stay f
    | _ ->
        rt.stats.Stats.ibl_misses <- rt.stats.Stats.ibl_misses + 1;
        log_flow rt "ibl miss 0x%x" target;
        `Dispatch
  end
  else `Dispatch

(* Run one scheduling quantum of [ts]'s thread. *)
let run_quantum (rt : runtime) (ts : thread_state) : quantum_result =
  let m = rt.machine in
  let t = ts.thread in
  let deadline = Vm.Machine.cycles m + rt.opts.Options.quantum in
  let budget () = deadline - Vm.Machine.cycles m in
  (* returns true to continue the quantum *)
  let rec from_dispatcher () =
    ts.in_cache <- false;
    if
      rt.flush_pending
      && List.for_all (fun o -> not o.in_cache) rt.thread_states
      && ts.tracegen = None
    then begin
      Emit.flush_all rt;
      charge rt rt.opts.Options.costs.Options.context_switch;
      log_flow rt "cache flush (capacity)"
    end;
    if budget () <= 0 then Q_budget
    else begin
      rt.stats.Stats.context_switches <- rt.stats.Stats.context_switches + 1;
      charge rt rt.opts.Options.costs.Options.context_switch;
      (* safe point: no thread state is mid-update and this thread is
         out of the cache — inject faults here, and audit right after
         any injection (plus on the configured period) so damage is
         healed before the cache is re-entered *)
      let injected = Faultinject.tick rt ts in
      if
        injected
        || (rt.opts.Options.audit_period > 0
            && rt.stats.Stats.context_switches mod rt.opts.Options.audit_period
               = 0)
      then audit_and_heal rt;
      log_flow rt "dispatch 0x%x" ts.next_tag;
      dispatch_next ()
    end
  and dispatch_next () =
    deliver_signals rt ts;
    if Hashtbl.mem rt.emulate_only ts.next_tag then begin
      (match ts.tracegen with
       | None -> ()
       | Some _ ->
           (* close out (or discard) the trace before leaving cache
              execution: its next block will never be a fragment *)
           let st = Hashtbl.find tg_table ts.ts_tid in
           if st.pending = P_start then abort_tracegen rt ts
           else ignore (finalize_trace rt ts st));
      emulate_block ()
    end
    else
      match fragment_for rt ts with
      | frag -> enter frag
      | exception Instr.Bad_raw_bits { addr; msg } ->
          (* undecodable raw bits surfaced while building a fragment:
             heal whatever cache state fed them and retry (the ladder
             bounds the retries, ending in pure emulation) *)
          abort_tracegen rt ts;
          recover_tag rt ts ~tag:ts.next_tag
            ~reason:(Printf.sprintf "bad raw bits at 0x%x: %s" addr msg);
          from_dispatcher ()
  and emulate_block () =
    (* ladder rung 4: this tag runs by pure interpretation, forever *)
    rt.stats.Stats.blocks_emulated <- rt.stats.Stats.blocks_emulated + 1;
    log_flow rt "emulate 0x%x" ts.next_tag;
    t.Vm.Machine.pc <- ts.next_tag;
    step_emulated ()
  and step_emulated () =
    if budget () <= 0 then begin
      ts.next_tag <- t.Vm.Machine.pc;
      Q_budget
    end
    else begin
      let pc0 = t.Vm.Machine.pc in
      let was_cti =
        match Decode.opcode_eflags (Vm.Memory.fetch (Vm.Machine.mem m)) pc0 with
        | Ok (op, _) -> Opcode.is_cti op
        | Error _ -> false
      in
      (* a 1-cycle budget interprets exactly one instruction *)
      match Vm.Interp.run m t ~budget:1 ~emulate:true with
      | Vm.Interp.Budget ->
          if was_cti then begin
            (* block over: back to the dispatcher with the new tag *)
            ts.next_tag <- t.Vm.Machine.pc;
            from_dispatcher ()
          end
          else step_emulated ()
      | Vm.Interp.Halted ->
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f -> Q_fault f
      | Vm.Interp.Smc _ ->
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush (emulated): %d fragments" (List.length flushed);
          step_emulated ()
      | Vm.Interp.Signal _ ->
          (* interception keeps signals pending for our safe points *)
          step_emulated ()
      | Vm.Interp.Ccall _ | Vm.Interp.Trap _ ->
          Q_fault
            (Printf.sprintf
               "emulated application code reached a runtime construct at 0x%x"
               pc0)
    end
  and enter (frag : fragment) =
    (match frag.kind with
     | Bb -> rt.stats.Stats.enters_bb <- rt.stats.Stats.enters_bb + 1
     | Trace -> rt.stats.Stats.enters_trace <- rt.stats.Stats.enters_trace + 1);
    t.Vm.Machine.pc <- frag.entry;
    resume ()
  and resume () =
    ts.in_cache <- true;
    if budget () <= 0 then Q_budget
    else
      match Vm.Interp.run m t ~budget:(budget ()) ~emulate:false with
      | Vm.Interp.Budget -> Q_budget
      | Vm.Interp.Halted ->
          ts.in_cache <- false;
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f ->
          ts.in_cache <- false;
          let pc = t.Vm.Machine.pc in
          if
            pc >= cache_base
            && String.length f >= 11
            && String.sub f 0 11 = "bad code at"
          then begin
            (* undecodable bytes inside the code cache: the cache, not
               the application, is damaged — heal and retry the block *)
            abort_tracegen rt ts;
            recover_tag rt ts ~tag:ts.next_tag ~reason:f;
            from_dispatcher ()
          end
          else Q_fault f
      | Vm.Interp.Signal h ->
          (* unreachable while interception is on (the VM defers
             signals to our safe points); if one surfaces anyway,
             re-queue it instead of dying *)
          ts.thread.Vm.Machine.pending_signals <-
            ts.thread.Vm.Machine.pending_signals @ [ h ];
          resume ()
      | Vm.Interp.Smc target ->
          (* the application wrote over executed code: flush the stale
             fragments, then continue where the hardware stopped *)
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush: %d fragments" (List.length flushed);
          (match
             List.find_opt
               (fun f -> target >= f.entry && target < f.total_end)
               flushed
           with
           | None -> resume ()
           | Some f when target = f.entry ->
               (* a linked branch pointed at the flushed fragment: we
                  know its application tag, so dispatch it fresh *)
               ts.next_tag <- f.tag;
               from_dispatcher ()
           | Some _ ->
               Q_fault
                 "self-modifying code rewrote the fragment currently executing")
      | Vm.Interp.Ccall { id; resume = rpc } -> (
          rt.stats.Stats.clean_calls <- rt.stats.Stats.clean_calls + 1;
          charge rt rt.opts.Options.costs.Options.clean_call;
          match Hashtbl.find_opt rt.ccalls id with
          | None -> Q_fault (Printf.sprintf "unknown clean call %d" id)
          | Some f ->
              Guard.protect rt ~hook:"clean_call" (fun () -> f { rt; ts });
              t.Vm.Machine.pc <- rpc;
              resume ())
      | Vm.Interp.Trap addr -> (
          charge rt rt.opts.Options.costs.Options.stub_exec;
          let id = (addr - trap_base) / 4 in
          match Hashtbl.find_opt rt.exit_by_id id with
          | None -> Q_fault (Printf.sprintf "unknown trap 0x%x" addr)
          | Some e -> (
              match e.e_kind with
              | Exit_direct ->
                  handle_direct_exit rt ts e;
                  from_dispatcher ()
              | Exit_indirect _ -> (
                  match handle_indirect_exit rt ts with
                  | `Stay f -> enter f
                  | `Dispatch -> from_dispatcher ())))
  in
  if ts.in_cache && not rt.opts.Options.emulate then resume ()
  else if rt.opts.Options.emulate then begin
    (* Table 1 row 1: no cache; re-decode and charge overhead on every
       instruction *)
    t.Vm.Machine.pc <- ts.next_tag;
    match Vm.Interp.run m t ~budget:(budget ()) ~emulate:true with
    | Vm.Interp.Budget ->
        ts.next_tag <- t.Vm.Machine.pc;
        Q_budget
    | Vm.Interp.Halted -> Q_thread_done
    | Vm.Interp.Fault f -> Q_fault f
    | s -> Q_fault ("unexpected emulation stop: " ^ Vm.Interp.stop_to_string s)
  end
  else from_dispatcher ()

