(** The in-core trace optimizer (DESIGN.md §6.4): copy/constant
    propagation, strength reduction, redundant-load removal, dead-store
    elimination, exit-check peepholes and dead flag-save elision.
    Traces are emitted unoptimized; once a trace proves hot
    ({!maybe_reoptimize}, every dispatcher/IBL entry), its cache image
    is decoded, the pipeline runs, and the body is replaced — gated on
    a static cost-model estimate so an optimization that makes a trace
    worse is never installed.

    Every pass either rewrites one instruction into a cheaper
    equal-semantics form or deletes a provably unobservable one: the
    instruction count never grows, and exit CTIs are treated as full
    liveness boundaries.

    At [-O3] this module also owns {e despeculation} (DESIGN.md §6.7):
    a speculative guard whose violation budget is spent has its
    conditional side exit converted into an unconditional exit to the
    same deoptimization target, dropping exactly that assumption while
    keeping the trace's profitable prefix. *)

open Types

(** Per-run pass counters; folded into {!Stats.t} by {!run}. *)
type counters = {
  mutable copies : int;
  mutable consts : int;
  mutable strength : int;
  mutable loads_removed : int;
  mutable loads_rewritten : int;
  mutable stores_removed : int;
  mutable dead_removed : int;
  mutable checks_simplified : int;
  mutable flag_saves_elided : int;
}

val fresh_counters : unit -> counters

(** {2 Individual passes} — exported for clients, examples and tests;
    each mutates the IL in place and bumps its counters. *)

val copy_prop : counters -> Instrlist.t -> unit
val strength_reduce : family:Vm.Cost.family -> counters -> Instrlist.t -> unit
val remove_redundant_loads : counters -> Instrlist.t -> unit
val eliminate_dead : counters -> Instrlist.t -> unit
val simplify_exit_checks : counters -> Instrlist.t -> unit
val elide_flag_saves : counters -> Instrlist.t -> unit

val run_passes :
  ?always_save_flags:bool ->
  family:Vm.Cost.family ->
  counters ->
  Options.opt_pass list ->
  Instrlist.t ->
  unit
(** Run the passes in order.  [always_save_flags] suppresses the
    flag-save elision (that ablation must keep every bracket). *)

val run : runtime -> Instrlist.t -> unit
(** Optimize a trace IL in place, charging the modelled pass cost and
    folding counters into the runtime's stats.  No-op when
    {!Options.effective_passes} is empty ([-O0]). *)

val estimate_cost : runtime -> Instrlist.t -> int
(** Static per-execution cycle estimate of an IL under the machine's
    cost model (base cycles + memory-operand charges; predictor terms
    ignored).  Only meaningful compared between two versions of the
    same code. *)

val despeculate : runtime -> thread_state -> fragment -> guard -> fragment
(** Drop one spent speculative assumption from a trace (DESIGN.md
    §6.7).  A constant-load guard is cut in place: its conditional
    side exit becomes an unconditional exit to the same deoptimization
    target, its compare and flags-save bracket are deleted, and the
    unreachable tail is truncated.  An indirect-target guard means the
    application changed phase, so the trace is deleted outright, the
    site's successor profile is cleared, and the head counter is
    re-armed — the head warms up over the current phase and rebuilds
    specialized for the new dominant target.  Called from the
    violation paths the moment a guard's burst budget is spent — a
    self-looping trace may never re-enter through the dispatcher.  In
    every outcome the guard stops being tracked; the returned fragment
    may be deleted (rebuild case) and callers ignore it. *)

val maybe_reoptimize : runtime -> thread_state -> fragment -> fragment
(** Called on every fragment entry.  At [opt_level >= 1]: counts trace
    entries and, once a trace proves hot (built-in threshold, or
    [reopt_threshold] when set), decodes its cache image, runs the
    pipeline and — if the cost model agrees — replaces the fragment
    (delayed delete).  Guard budgets are not polled here; the
    violation paths call {!despeculate} directly.  Returns the
    fragment to actually enter — a fresh one on success, the original
    when nothing changed or replacement found no room. *)
