(** gzip-like: LZ77-style compression loops (SPEC2000 164.gzip).

    Character: byte-granular scanning loops ([movzx8]), hash-chain
    match searching with data-dependent branches, and counter-update
    code dense in [inc]/[dec] (a strength-reduction beneficiary on the
    Pentium 4).  High code reuse, no indirect branches. *)

open Asm.Dsl

let buf_len = 4096
let passes = 28

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);                       (* output "size" *)
    label "pass";
    mov esi (i 0);                       (* cursor *)
    label "scan";
    (* load current byte, hash it with the next two *)
    li ebx "buf";
    movzx8 eax (m ~base:ebx ~index:(esi, 1) ());
    movzx8 ecx (m ~base:ebx ~index:(esi, 1) ~disp:1 ());
    shl eax (i 5);
    xor eax ecx;
    movzx8 ecx (m ~base:ebx ~index:(esi, 1) ~disp:2 ());
    shl eax (i 5);
    xor eax ecx;
    and_ eax (i 1023);
    (* probe the hash head: match or literal? *)
    li ebx "head";
    mov ecx (m ~base:ebx ~index:(eax, 4) ());
    mov (m ~base:ebx ~index:(eax, 4) ()) esi
    ;
    cmp ecx (i 0);
    j z "literal";
    (* candidate: compare a short window *)
    mov eax esi;
    sub eax ecx;
    cmp eax (i 255);
    j nbe "literal";                     (* too far: emit literal *)
    (* "match": advance by 3, emit length/distance *)
    add esi (i 3);
    add edi (i 2);
    inc edx;                             (* match counter *)
    dec edx;                            (* ...and a paired dec (flag games) *)
    inc edx;
    jmp "advance";
    label "literal";
    inc esi;
    inc edi;
    label "advance";
    cmp esi (i (buf_len - 3));
    j l "scan";
    inc edx;
    cmp edx (i passes);
    j l "pass";
    out edi;
    out edx;
    hlt;
  ]

let data =
  [
    label "buf";
    bytes
      (String.init buf_len (fun k ->
           (* compressible-ish: repeating motifs with noise *)
           let v = (k * 7 mod 96) + if k mod 37 = 0 then k mod 23 else 0 in
           Char.chr (v land 0xFF)));
    label "head";
    word32 (List.init 1024 (fun _ -> 0));
  ]

let workload =
  Workload.make ~name:"gzip" ~spec_name:"164.gzip" ~fp:false
    ~description:
      "byte-scanning hash-chain compression loops, inc/dec heavy, high reuse"
    (program ~name:"gzip" ~entry:"main" ~text ~data ())
