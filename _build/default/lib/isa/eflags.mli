(** The SynISA [eflags] register: the six IA-32 arithmetic status
    flags, plus read/write {e effect masks} used by transformation
    safety analyses (the paper's [EFLAGS_READ_CF]-style constants). *)

type flag = CF | PF | AF | ZF | SF | OF

val all_flags : flag list
val bit : flag -> int
val flag_name : flag -> string

(** {2 Concrete flag-register values} *)

type t = int
(** OR of {!bit} for each set flag. *)

val empty : t
val is_set : t -> flag -> bool
val set : t -> flag -> t
val clear : t -> flag -> t
val update : t -> flag -> bool -> t

val all_mask : int
(** Bit mask covering all six flags. *)

val pp : Format.formatter -> t -> unit

(** {2 Read/write effect masks} *)

type mask = int
(** Encodes a set of flags read and a set of flags written. *)

val none : mask
val read_all : mask
val write_all : mask
val read_of : flag -> mask
val write_of : flag -> mask
val reads : flag list -> mask
val writes : flag list -> mask
val union : mask -> mask -> mask
val reads_flag : mask -> flag -> bool
val writes_flag : mask -> flag -> bool
val read_set : mask -> flag list
val write_set : mask -> flag list

val read_mask : mask -> int
(** Flags read, as a flag-register bit mask. *)

val write_mask : mask -> int
(** Flags written, as a flag-register bit mask. *)

val pp_mask : Format.formatter -> mask -> unit
