(** twolf-like: standard-cell placement annealing (SPEC2000 300.twolf).

    Character: branchy integer loops computing wire-length deltas for
    proposed cell swaps, with accept/reject decisions and enough
    cross-block stack-slot reloads (spilled loop-invariants) for
    redundant load removal to matter on integer code. *)

open Asm.Dsl

let cells = 600
let moves = 9000

let wl = mb ebp ~disp:(-8)   (* spilled: current wire length *)
let tmp = mb ebp ~disp:(-12) (* spilled: temperature *)

let text =
  [
    label "main";
    mov ebp esp;
    sub esp (i 32);
    mov eax (i 100000);
    mov wl eax;
    mov eax (i 997);
    mov tmp eax;
    mov edx (i 0);
    label "move";
    (* pick two cells *)
    mov eax edx;
    imul eax (i 211);
    mov esi eax;
    and_ esi (i 511);
    mov ecx eax;
    shr ecx (i 9);
    and_ ecx (i 511);
    (* delta = pos[a] - pos[b], with branches on sign *)
    li ebx "pos";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    sub eax (m ~base:ebx ~index:(ecx, 4) ());
    j nl "posd";
    neg eax;
    label "posd";
    (* accept if delta beats the (reloaded) temperature *)
    mov ecx tmp;                        (* reload spilled temperature *)
    cmp eax ecx;
    j l "reject";
    (* accept: swap-ish update and wire-length bookkeeping *)
    mov ecx wl;                         (* reload spilled wire length *)
    sub ecx eax;
    mov wl ecx;
    li ebx "pos";
    mov ecx (m ~base:ebx ~index:(esi, 4) ());
    add ecx (i 3);
    and_ ecx (i 0xFFFF);
    mov (m ~base:ebx ~index:(esi, 4) ()) ecx;
    jmp "cool";
    label "reject";
    mov ecx wl;                         (* reload on this path too *)
    add ecx (i 1);
    mov wl ecx;
    label "cool";
    (* temperature decay every 256 moves *)
    mov eax edx;
    and_ eax (i 255);
    j nz "nocool";
    mov eax tmp;
    imul eax (i 15);
    shr eax (i 4);
    mov tmp eax;
    label "nocool";
    inc edx;
    cmp edx (i moves);
    j l "move";
    mov eax wl;
    out eax;
    hlt;
  ]

let data = [ label "pos"; word32 (Workload.lcg_mod ~seed:33 cells 0xFFFF) ]

let workload =
  Workload.make ~name:"twolf" ~spec_name:"300.twolf" ~fp:false
    ~description:
      "annealing move loops: dense conditional branches and spilled-invariant \
       reloads across blocks"
    (program ~name:"twolf" ~entry:"main" ~text ~data ())
