(** The client-facing API (paper §3.2, §3.4, §3.5): transparent I/O,
    storage and allocation, spill slots and TLS operands for emitted
    code, processor identification, clean calls, custom exit stubs,
    trace-head marking, and the adaptive-optimization pair
    {!decode_fragment} / {!replace_fragment}. *)

open Isa
open Types

(** {2 Transparency: I/O and storage apart from the application} *)

val printf : runtime -> ('a, unit, string, unit) format4 -> 'a
val client_output : runtime -> string
val set_global_field : runtime -> exn -> unit
val get_global_field : runtime -> exn option

val alloc_global : runtime -> bytes:int -> int
(** Zero-initialized storage in the runtime's own region, invisible to
    the application; usable host-side and as an absolute-memory operand
    in emitted code (low-overhead profiling counters). *)

val global_opnd : int -> Operand.t
val read_global : runtime -> int -> int
val write_global : runtime -> int -> int -> unit
val set_thread_field : context -> exn -> unit
val get_thread_field : context -> exn option

(** {2 Processor identification} *)

val proc_get_family : runtime -> Vm.Cost.family

(** {2 Spill slots and TLS operands for emitted code} *)

val spill_slot_opnd : context -> int -> Operand.t
val save_reg : context -> Reg.t -> int -> Instr.t
val restore_reg : context -> Reg.t -> int -> Instr.t
val tls_field_opnd : context -> Operand.t
val read_tls_field : context -> int
val write_tls_field : context -> int -> unit

val read_ibl_target : context -> int
(** The in-flight indirect-branch target (what Figure 4's profiling
    routine reads). *)

val ibl_target_opnd : context -> Operand.t

(** {2 Clean calls} *)

val clean_call : runtime -> ccall_fn -> Instr.t
(** An instruction that saves the application context and invokes the
    closure host-side; the closure may call any API routine, including
    {!replace_fragment} on its own fragment. *)

(** {2 Custom exit stubs (§3.2)} *)

val set_custom_stub : ?always:bool -> Instr.t -> Instrlist.t -> unit
(** Prepend [il] to the exit's stub; with [~always:true] the exit goes
    through the stub even when linked.  Stub ILs may themselves contain
    exit CTIs (one level deep) — how "code at the bottom of the trace"
    chains are built. *)

val get_custom_stub : Instr.t -> (Instrlist.t * bool) option

(** {2 Custom traces (§3.5)} *)

val mark_trace_head : context -> int -> unit

(** {2 Adaptive optimization (§3.4)} *)

val decode_fragment : context -> int -> Instrlist.t option
(** Rebuild a fragment's client-view InstrList from the code cache. *)

val replace_fragment : context -> int -> Instrlist.t -> bool
(** Emit the IL as the fragment's new body and atomically redirect all
    links; the old body survives until the executing thread leaves it. *)

(** {2 Core optimizer passes (DESIGN.md §6.4)}

    Clients and examples reach the in-core passes directly instead of
    reimplementing them in their hooks.  Each wrapper runs one pass
    over the IL in place and returns how many rewrites it applied. *)

val opt_propagate_copies : Instrlist.t -> int
val opt_strength_reduce : runtime -> Instrlist.t -> int
(** Architecture-gated: a no-op (returns 0) unless the machine is a
    Pentium 4, where [inc]/[dec] are slower than [add]/[sub]. *)

val opt_remove_redundant_loads : Instrlist.t -> int
val opt_eliminate_dead : Instrlist.t -> int
val opt_simplify_exit_checks : Instrlist.t -> int
val opt_elide_flag_saves : Instrlist.t -> int

(** {2 Introspection} *)

val dump_cache : runtime -> string
(** Disassembled dump of every live fragment with its exits and link
    state. *)
