(** Shared scaffolding for the bench sweep subcommands (throughput,
    cachesweep, optsweep, parsweep): CLI parsing, native-checked runs,
    and JSON datapoint emission.  Factoring it here keeps each sweep
    about its experiment, not its plumbing. *)

let pr fmt = Printf.printf fmt

let geomean xs =
  exp
    (List.fold_left (fun a x -> a +. log x) 0.0 xs
    /. float_of_int (List.length xs))

let time_now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

type cli = {
  quick : bool;
  out_path : string;
  extra : (string * string) list;  (* accepted --name value options *)
}

(** Parse a sweep's arguments: [--quick], [--out PATH], plus any
    [--name VALUE] options named in [string_opts]. *)
let parse_cli ~cmd ?(string_opts = []) ~default_out (args : string list) : cli =
  let quick = ref false in
  let out_path = ref default_out in
  let extra = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: tl ->
        quick := true;
        parse tl
    | "--out" :: p :: tl ->
        out_path := p;
        parse tl
    | a :: v :: tl when List.mem a string_opts ->
        extra := (a, v) :: !extra;
        parse tl
    | a :: _ -> failwith (cmd ^ ": unknown argument " ^ a)
  in
  parse args;
  { quick = !quick; out_path = !out_path; extra = List.rev !extra }

(* ------------------------------------------------------------------ *)
(* Native references                                                  *)
(* ------------------------------------------------------------------ *)

(** Native run that must complete; sweeps compare against it. *)
let native_checked (w : Workloads.Workload.t) : Workloads.Workload.run_result =
  let r = Workloads.Workload.run_native w in
  if not r.Workloads.Workload.ok then
    failwith (w.Workloads.Workload.name ^ ": native failed");
  r

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

let rec output_json oc ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> output_string oc "null"
  | Bool b -> output_string oc (string_of_bool b)
  | Int n -> output_string oc (string_of_int n)
  | Float f -> Printf.fprintf oc "%.6g" f
  | Str s -> Printf.fprintf oc "%S" s
  | Arr [] -> output_string oc "[]"
  | Arr vs ->
      output_string oc "[\n";
      List.iteri
        (fun k x ->
          output_string oc (pad (indent + 2));
          output_json oc ~indent:(indent + 2) x;
          if k < List.length vs - 1 then output_string oc ",";
          output_string oc "\n")
        vs;
      output_string oc (pad indent);
      output_string oc "]"
  | Obj [] -> output_string oc "{}"
  | Obj fields ->
      output_string oc "{\n";
      List.iteri
        (fun k (name, x) ->
          output_string oc (pad (indent + 2));
          Printf.fprintf oc "%S: " name;
          output_json oc ~indent:(indent + 2) x;
          if k < List.length fields - 1 then output_string oc ",";
          output_string oc "\n")
        fields;
      output_string oc (pad indent);
      output_string oc "}"

(** Write a sweep's JSON datapoint and report the path. *)
let write_json ~path (v : json) : unit =
  let oc = open_out path in
  output_json oc ~indent:0 v;
  output_string oc "\n";
  close_out oc;
  pr "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Baselines                                                          *)
(* ------------------------------------------------------------------ *)

(** Baseline file: one "<name> <value>" pair per line, '#' comments. *)
let read_baseline path : (string * float) list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let acc = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line with
           | name :: rest -> (
               match List.filter (fun s -> s <> "") rest with
               | [ v ] -> acc := (name, float_of_string v) :: !acc
               | _ -> ())
           | [] -> ()
       done
     with End_of_file -> close_in ic);
    List.rev !acc
  end
