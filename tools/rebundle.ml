(* Re-stamp a configuration bundle after a codec migration.

   When the bundle schema grows new knobs (absent keys take their
   defaults on load), the canonical payload — and therefore the
   embedded digest — changes, so a previously saved bundle.json no
   longer verifies.  The escape hatch: [Bundle.load] accepts an empty
   digest field.  Blank the "digest" value by hand, then run

     dune exec tools/rebundle.exe -- bundle.json

   which loads the bundle (defaults filled in), re-validates it, and
   saves it back with a freshly computed digest over the current
   canonical payload. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      match Rio.Bundle.load path with
      | Error e ->
          Printf.eprintf "rebundle: %s: %s\n" path
            (Rio.Bundle.error_to_string e);
          exit 1
      | Ok b -> (
          match Rio.Bundle.save path b with
          | Ok () ->
              Printf.printf "rebundle: re-stamped %s (digest %08x)\n" path
                (Rio.Bundle.digest b)
          | Error e ->
              Printf.eprintf "rebundle: %s: %s\n" path
                (Rio.Bundle.error_to_string e);
              exit 1))
  | _ ->
      prerr_endline "usage: rebundle FILE";
      exit 2
