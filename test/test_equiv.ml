(** Observational equivalence: the load-bearing property of the whole
    system.  Every workload must produce exactly the same output and
    halt normally under:

    - native execution,
    - pure emulation (small workloads),
    - every Table-1 cache configuration,
    - every optimization client (and all four combined).

    This is the dynamic-optimization analogue of a compiler's
    differential-testing suite. *)

open Workloads

let check_ilist = Alcotest.(check (list int))
let checkb = Alcotest.(check bool)

let native_results =
  lazy
    (List.map
       (fun w ->
         let r = Workload.run_native w in
         if not r.Workload.ok then
           Alcotest.failf "%s: native run failed: %s" w.Workload.name r.detail;
         (w.Workload.name, r))
       Suite.all)

let native w = List.assoc w.Workload.name (Lazy.force native_results)

let expect_equal w name (r : Workload.run_result) =
  let n = native w in
  checkb
    (Printf.sprintf "%s/%s halts" w.Workload.name name)
    true r.Workload.ok;
  check_ilist (Printf.sprintf "%s/%s output" w.Workload.name name)
    n.Workload.output r.Workload.output

let config_case (cname, opts) () =
  List.iter
    (fun w ->
      let r, _ = Workload.run_rio ~opts w in
      expect_equal w cname r)
    Suite.all

let client_case (cname, mkclient) () =
  List.iter
    (fun w ->
      let r, _ = Workload.run_rio ~client:(mkclient ()) w in
      expect_equal w cname r)
    Suite.all

let emulation_case () =
  (* emulation is ~300x native: restrict to the smaller workloads *)
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      let opts =
        { (List.assoc "emulation" Rio.Options.table1_configs) with
          Rio.Options.max_cycles = max_int / 2 }
      in
      let r, _ = Workload.run_rio ~opts w in
      expect_equal w "emulation" r)
    [ "gzip"; "gcc"; "eon"; "perlbmk"; "vortex" ]

(* Golden simulated cycle counts per workload: (native, rio with
   default options, rio with the four optimization clients combined,
   rio at -O2).  Captured from the seed implementation — host-side
   performance work must never move these, because the cost model is
   what the paper's Figure 5 numbers rest on.  The default-options
   column doubles as the -O0 golden: the optimizer is off by default
   and must not perturb a single cycle.  Regenerate only when the cost
   model (or, for the last column, the optimizer) deliberately
   changes. *)
let golden_cycles =
  [
    ("gzip", (82595, 120189, 107844, 109740));
    ("vpr", (2109008, 2206938, 1944816, 2021972));
    ("parser", (234595, 493033, 462040, 485557));
    ("gcc", (436263, 1183414, 1970603, 1203853));
    ("mcf", (2529953, 2496477, 2496462, 2497197));
    ("crafty", (332340, 542385, 501863, 543501));
    ("eon", (330727, 536517, 404531, 513156));
    ("perlbmk", (67611, 156850, 148544, 154478));
    ("gap", (738584, 1012140, 812254, 959454));
    ("vortex", (540039, 686319, 572379, 673776));
    ("bzip2", (5750917, 5811245, 5248241, 5286606));
    ("twolf", (569440, 594918, 568476, 571252));
    ("wupwise", (503869, 560010, 477798, 540648));
    ("swim", (2773546, 2808446, 2396633, 2397569));
    ("mgrid", (5906418, 5927786, 3913136, 3917361));
    ("applu", (202510, 269056, 234151, 251794));
    ("mesa", (306555, 830203, 603955, 818761));
    ("art", (2452689, 2502225, 2169753, 2172313));
    ("equake", (2376868, 2504431, 2258038, 2294855));
    ("ammp", (1685615, 1741877, 1645205, 1657758));
  ]

let checki = Alcotest.(check int)

let golden_case () =
  List.iter
    (fun w ->
      let name = w.Workload.name in
      let native_c, rio_c, opt_c, o2_c = List.assoc name golden_cycles in
      checki (name ^ " native cycles") native_c (native w).Workload.cycles;
      let r, _ = Workload.run_rio w in
      checki (name ^ " rio cycles (-O0)") rio_c r.Workload.cycles;
      let r, _ = Workload.run_rio ~client:(Clients.Compose.all_four ()) w in
      checki (name ^ " rio+clients cycles") opt_c r.Workload.cycles;
      let opts = { Rio.Options.default with Rio.Options.opt_level = 2 } in
      let r, _ = Workload.run_rio ~opts w in
      checki (name ^ " rio -O2 cycles") o2_c r.Workload.cycles)
    Suite.all

let p3_case () =
  (* the whole suite also runs on the other processor family *)
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      let n = Workload.run_native ~family:Vm.Cost.Pentium3 w in
      let r, _ =
        Workload.run_rio ~family:Vm.Cost.Pentium3
          ~client:(Clients.Compose.all_four ()) w
      in
      checkb (name ^ " p3 native ok") true n.Workload.ok;
      checkb (name ^ " p3 rio ok") true r.Workload.ok;
      check_ilist (name ^ " p3 output") n.Workload.output r.Workload.output)
    [ "bzip2"; "mgrid"; "crafty" ]

let () =
  let cache_configs =
    List.filter (fun (n, _) -> n <> "emulation") Rio.Options.table1_configs
  in
  Alcotest.run "equivalence"
    [
      ( "table-1 configurations",
        List.map
          (fun (n, o) -> Alcotest.test_case n `Slow (config_case (n, o)))
          cache_configs
        @ [ Alcotest.test_case "emulation (small workloads)" `Slow emulation_case ] );
      ( "clients",
        List.map
          (fun (n, mk) -> Alcotest.test_case n `Slow (client_case (n, mk)))
          [
            ("rlr", fun () -> Clients.Rlr.make ());
            ("strength", fun () -> Clients.Strength.make ~on_bb:false);
            ("strength-bb", fun () -> Clients.Strength.make ~on_bb:true);
            ("ibdispatch", fun () -> Clients.Ibdispatch.make ());
            ("ctraces", fun () -> Stdlib.fst (Clients.Ctraces.make ()));
            ("counter", fun () -> Stdlib.fst (Clients.Counter.make ~dynamic:true ()));
            ("edgeprof", fun () -> Stdlib.fst (Clients.Edgeprof.make ()));
            ("combined", fun () -> Clients.Compose.all_four ());
          ] );
      ("processor families", [ Alcotest.test_case "pentium 3" `Slow p3_case ]);
      ( "golden cycle counts",
        [ Alcotest.test_case "seed cycle counts unchanged" `Slow golden_case ] );
    ]
