(** Redundant load removal (paper §4.1).

    A classic compiler optimization applied dynamically to traces.
    IA-32's (and SynISA's) register scarcity makes compilers spill
    locals to the stack and reload them, often redundantly — even at
    [gcc -O3], and especially across basic-block boundaries, which a
    trace's linear view exposes.

    The analysis is a single forward scan maintaining facts
    "register r currently holds the value of memory operand M":

    - [mov r, M] with a live fact [r' = M] → rewrite to [mov r, r']
      (or delete when [r = r']); likewise [fld f, M] → [fmov f, f'].
    - any store invalidates facts whose address may alias the target
      (same-base/index operands are disjoint when displacement ranges
      cannot overlap; everything else conservatively aliases);
    - overwriting a register kills facts holding it or using it in an
      address; esp writes (push/pop/call) kill esp-based facts;
    - clean calls kill everything (the host may mutate state).

    Loads and moves touch no eflags, so rewrites are always flag-safe. *)

open Isa
open Rio.Types

type fact =
  | Gpr_holds of Reg.t * Operand.mem * int   (* reg = [mem], width bytes *)
  | Fpr_holds of Reg.F.t * Operand.mem * int

type state = { mutable facts : fact list; mutable removed : int; mutable rewritten : int }

(* conservative alias test between a written mem (width wa) and a fact mem *)
let may_alias (a : Operand.mem) wa (b : Operand.mem) wb =
  let same_index =
    Option.equal (fun (r1, s1) (r2, s2) -> Reg.equal r1 r2 && s1 = s2) a.index b.index
  in
  let same_base = Option.equal Reg.equal a.base b.base in
  if same_base && same_index then
    (* identical address expressions modulo displacement *)
    not (a.disp + wa <= b.disp || b.disp + wb <= a.disp)
  else true (* different bases may point anywhere *)

let fact_mem = function Gpr_holds (_, m, w) -> (m, w) | Fpr_holds (_, m, w) -> (m, w)

let kill_aliasing st (m : Operand.mem) w =
  st.facts <-
    List.filter
      (fun f ->
        let fm, fw = fact_mem f in
        not (may_alias m w fm fw))
      st.facts

let kill_reg st (r : Reg.t) =
  st.facts <-
    List.filter
      (fun f ->
        match f with
        | Gpr_holds (h, m, _) ->
            (not (Reg.equal h r))
            && not (List.exists (Reg.equal r) (Operand.mem_regs m))
        | Fpr_holds (_, m, _) -> not (List.exists (Reg.equal r) (Operand.mem_regs m)))
      st.facts

let kill_freg st (f : Reg.F.t) =
  st.facts <-
    List.filter
      (function Fpr_holds (h, _, _) -> not (Reg.F.equal h f) | Gpr_holds _ -> true)
      st.facts

let kill_all st = st.facts <- []

let find_gpr st (m : Operand.mem) w =
  List.find_map
    (function
      | Gpr_holds (r, fm, fw) when fw = w && Operand.equal_mem fm m -> Some r
      | _ -> None)
    st.facts

let find_fpr st (m : Operand.mem) =
  List.find_map
    (function
      | Fpr_holds (f, fm, 8) when Operand.equal_mem fm m -> Some f
      | _ -> None)
    st.facts

let add_fact st f = st.facts <- f :: st.facts

(* Apply the generic state updates for one (possibly rewritten) instr. *)
let update_state st (i : Rio.Instr.t) =
  let insn = Rio.Instr.get_insn i in
  (* memory writes *)
  Array.iter
    (fun d ->
      match d with
      | Operand.Mem m ->
          let w = if Opcode.is_fp insn.Insn.opcode then 8 else 4 in
          kill_aliasing st m w
      | _ -> ())
    insn.Insn.dsts;
  (* implicit stack writes *)
  if Opcode.implicit_stack_write insn.Insn.opcode then begin
    (* the pushed slot may alias any esp-based fact; esp also changes *)
    st.facts <-
      List.filter
        (fun f ->
          let m, _ = fact_mem f in
          not (List.exists (Reg.equal Reg.Esp) (Operand.mem_regs m)))
        st.facts
  end;
  if Opcode.implicit_stack_read insn.Insn.opcode then
    (* esp changes: esp-based facts shift meaning *)
    st.facts <-
      List.filter
        (fun f ->
          let m, _ = fact_mem f in
          not (List.exists (Reg.equal Reg.Esp) (Operand.mem_regs m)))
        st.facts;
  (* register overwrites *)
  Array.iter
    (fun d ->
      match d with
      | Operand.Reg r -> kill_reg st r
      | Operand.Freg f -> kill_freg st f
      | _ -> ())
    insn.Insn.dsts;
  if insn.Insn.opcode = Opcode.Ccall then kill_all st

let optimize_il (il : Rio.Instrlist.t) (st : state) =
  Rio.Instrlist.decode_to il Rio.Level.L3;
  let rec go = function
    | None -> ()
    | Some (i : Rio.Instr.t) ->
        let nxt = i.Rio.Instr.next in
        let insn = Rio.Instr.get_insn i in
        (match (insn.Insn.opcode, insn.Insn.dsts, insn.Insn.srcs) with
         (* pure 32-bit load *)
         | Opcode.Mov, [| Operand.Reg r |], [| Operand.Mem m |] -> (
             match find_gpr st m 4 with
             | Some r' ->
                 if Reg.equal r r' then begin
                   Rio.Instrlist.remove il i;
                   st.removed <- st.removed + 1
                 end
                 else begin
                   Rio.Instr.set_insn i (Insn.mk_mov (Operand.Reg r) (Operand.Reg r'));
                   st.rewritten <- st.rewritten + 1;
                   kill_reg st r;
                   if not (List.exists (Reg.equal r) (Operand.mem_regs m)) then
                     add_fact st (Gpr_holds (r, m, 4))
                 end
             | None ->
                 kill_reg st r;
                 (* a load whose address uses the destination register
                    cannot be remembered: the address changes with r *)
                 if not (List.exists (Reg.equal r) (Operand.mem_regs m)) then
                   add_fact st (Gpr_holds (r, m, 4)))
         (* 32-bit store: register now mirrors the slot *)
         | Opcode.Mov, [| Operand.Mem m |], [| Operand.Reg r |] ->
             kill_aliasing st m 4;
             add_fact st (Gpr_holds (r, m, 4))
         (* FP load *)
         | Opcode.Fld, [| Operand.Freg f |], [| Operand.Mem m |] -> (
             match find_fpr st m with
             | Some f' ->
                 if Reg.F.equal f f' then begin
                   Rio.Instrlist.remove il i;
                   st.removed <- st.removed + 1
                 end
                 else begin
                   Rio.Instr.set_insn i (Insn.mk_fmov f f');
                   st.rewritten <- st.rewritten + 1;
                   kill_freg st f;
                   add_fact st (Fpr_holds (f, m, 8))
                 end
             | None ->
                 kill_freg st f;
                 add_fact st (Fpr_holds (f, m, 8)))
         (* FP store *)
         | Opcode.Fst, [| Operand.Mem m |], [| Operand.Freg f |] ->
             kill_aliasing st m 8;
             add_fact st (Fpr_holds (f, m, 8))
         | _ -> update_state st i);
        go nxt
  in
  st.facts <- [];
  go (Rio.Instrlist.first il)

(* ------------------------------------------------------------------ *)

(** Build a fresh client record.  All counters live in the closure, so
    instances on different worker domains never share state.  Only the
    trace hook is registered: like most client optimizations, RLR
    restricts itself to hot code (§3.3). *)
let make () : client =
  let total_removed = ref 0 in
  let total_rewritten = ref 0 in
  let st = { facts = []; removed = 0; rewritten = 0 } in
  {
    null_client with
    name = "rlr";
    init =
      (fun _ ->
        total_removed := 0;
        total_rewritten := 0);
    trace_hook =
      Some
        (fun _ctx ~tag:_ il ->
          st.removed <- 0;
          st.rewritten <- 0;
          optimize_il il st;
          total_removed := !total_removed + st.removed;
          total_rewritten := !total_rewritten + st.rewritten);
    exit_hook =
      (fun rt ->
        Rio.Api.printf rt "rlr: removed %d loads, rewrote %d to register moves\n"
          !total_removed !total_rewritten);
  }