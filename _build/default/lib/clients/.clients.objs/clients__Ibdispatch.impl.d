lib/clients/ibdispatch.ml: Cond Hashtbl Isa List Opcode Operand Option Rio
