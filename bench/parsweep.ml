(** Parallel serving sweep: domain-count scaling of the pool
    (DESIGN.md §6.5), written to BENCH_parallel.json.

    For each domain count on the ladder, a pre-warmed pool (every
    (worker, workload) instance built at boot, so no request ever pays
    a cold boot) serves an interleaved (workload x input-seed) request
    stream twice: an untimed warm-up pass that populates every
    worker's code caches, then a measured pass.  Every result — warm-up and measured, with and without fault
    injection — is checked byte-for-byte against a native reference.

    Scaling is gated on {e simulated-cycle makespan}: the longest
    per-worker sum of served cycles.  Host wall-clock is reported but
    informational — CI machines (and this one) may expose a single
    core, where real parallel speedup is physically impossible, while
    makespan measures exactly what the work-stealing dispatcher
    controls: how evenly the stream spreads over d workers.

    A second gate measures what warm reuse buys: host seconds to serve
    the one-domain measured pass on warm instances vs. serving the
    same requests with a fresh machine + runtime per request. *)

open Workloads

let pr fmt = Printf.printf fmt

let mix_names ~quick =
  if quick then [ "gzip"; "parser" ] else [ "gzip"; "parser"; "perlbmk"; "gcc" ]

let ladder ~quick = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ]
let requests_for ~quick d = if quick then max 8 (4 * d) else max 16 (6 * d)

type pass_row = {
  pw_domains : int;
  pw_requests : int;
  pw_total_sim : int;       (* sum of per-request simulated cycles *)
  pw_makespan_sim : int;    (* max per-worker simulated busy cycles *)
  pw_eff_par : float;       (* total / makespan: effective parallelism *)
  pw_host_s : float;
  pw_steals : int;
  pw_warm_hits : int;
  pw_cold_boots : int;
}

let run ~quick ~out_path () =
  let wls =
    List.map
      (fun n -> Workload.serving_variant (Option.get (Suite.by_name n)))
      (mix_names ~quick)
  in
  pr "\n=== Parallel serving sweep (%s mode; mix: %s) ===\n"
    (if quick then "quick" else "full")
    (String.concat "," (mix_names ~quick));

  (* request maker (with native-reference cache), boots, and result
     checking come from the shared pool scaffolding in Sweep *)
  let make_requests = Sweep.request_maker wls in
  let boots ~opts = Sweep.pool_boots ~opts wls in
  let divergences = ref 0 in
  let check_pass tag results = Sweep.check_pass ~divergences tag results in
  let default_opts = { Rio.Options.default with max_cycles = max_int / 2 } in

  (* ---------------- scaling ladder ---------------- *)
  pr "%8s %9s %14s %14s %8s %8s %7s %6s\n" "domains" "requests" "total-Mcyc"
    "makespan-Mcyc" "eff-par" "host-s" "steals" "warm";
  let warm_1domain_secs = ref 0.0 in
  let measured_1domain = ref [] in
  let rows =
    List.map
      (fun d ->
        let n = requests_for ~quick d in
        let pool =
          Rio.Pool.create
            ~cfg:{ Rio.Options.default_pool with domains = d; prewarm = true }
            ~boots:(boots ~opts:default_opts) ()
        in
        (* untimed warm-up: same size, distinct seeds — the text is
           identical across seeds, so caches warm fully *)
        List.iter (Sweep.submit_exn pool) (make_requests ~seed_base:10_000 n);
        check_pass (Printf.sprintf "warmup d=%d" d) (Rio.Pool.drain pool);
        let wsnap = Rio.Pool.stats pool in
        if wsnap.Rio.Pool.snap_cold_boots > 0 then begin
          pr "!! %d cold boots during warm-up at %d domains despite \
              pre-warming\n%!"
            wsnap.Rio.Pool.snap_cold_boots d;
          exit 1
        end;
        Rio.Pool.reset_counters pool;
        let reqs = make_requests ~seed_base:0 n in
        let t0 = Sweep.time_now () in
        List.iter (Sweep.submit_exn pool) reqs;
        let results = Rio.Pool.drain pool in
        let host_s = Sweep.time_now () -. t0 in
        check_pass (Printf.sprintf "measured d=%d" d) results;
        let snap = Rio.Pool.stats pool in
        Rio.Pool.shutdown pool;
        let total =
          List.fold_left (fun a r -> a + r.Rio.Pool.res_cycles) 0 results
        in
        let makespan =
          Array.fold_left max 0 snap.Rio.Pool.snap_busy_cycles
        in
        let eff = float_of_int total /. float_of_int (max 1 makespan) in
        if d = 1 then begin
          warm_1domain_secs := host_s;
          measured_1domain := reqs
        end;
        pr "%8d %9d %14.2f %14.2f %8.2f %8.3f %7d %6d\n%!" d n
          (float_of_int total /. 1e6)
          (float_of_int makespan /. 1e6)
          eff host_s snap.Rio.Pool.snap_steals snap.Rio.Pool.snap_warm_hits;
        {
          pw_domains = d;
          pw_requests = n;
          pw_total_sim = total;
          pw_makespan_sim = makespan;
          pw_eff_par = eff;
          pw_host_s = host_s;
          pw_steals = snap.Rio.Pool.snap_steals;
          pw_warm_hits = snap.Rio.Pool.snap_warm_hits;
          pw_cold_boots = snap.Rio.Pool.snap_cold_boots;
        })
      (ladder ~quick)
  in

  (* ---------------- warm reuse vs fresh-per-request ---------------- *)
  (* serve the one-domain measured request list again, this time with a
     fresh machine + runtime per request (no cache carry-over) *)
  let boots1 = boots ~opts:default_opts in
  let t0 = Sweep.time_now () in
  List.iter
    (fun (r : Rio.Pool.request) ->
      let boot = List.assoc r.Rio.Pool.req_key boots1 in
      let m = boot.Rio.Pool.boot_machine () in
      let rt = Rio.create ~opts:boot.Rio.Pool.boot_opts m in
      ignore
        (Vm.Machine.add_thread m ~entry:boot.Rio.Pool.boot_entry
           ~stack_top:boot.Rio.Pool.boot_stack_top);
      Vm.Machine.set_input m r.Rio.Pool.req_input;
      let o = Rio.run rt in
      let out = Vm.Machine.output m in
      if o.Rio.reason <> Rio.All_exited || Some out <> r.Rio.Pool.req_expect
      then begin
        incr divergences;
        pr "!! fresh-per-request: %s seed %d diverged\n%!" r.Rio.Pool.req_key
          r.Rio.Pool.req_seed
      end)
    !measured_1domain;
  let fresh_secs = Sweep.time_now () -. t0 in
  let warm_speedup = fresh_secs /. !warm_1domain_secs in
  pr "warm reuse at 1 domain: %.3fs warm vs %.3fs fresh-per-request (%.2fx)\n%!"
    !warm_1domain_secs fresh_secs warm_speedup;

  (* ---------------- fault-injection correctness pass ---------------- *)
  let fd = 2 in
  let fn = requests_for ~quick fd in
  let fault_opts =
    {
      Rio.Options.default with
      max_cycles = max_int / 2;
      faults = Some { Rio.Options.default_faults with fi_seed = 7 };
      audit_period = 1;
    }
  in
  let fpool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = fd }
      ~boots:(boots ~opts:fault_opts) ()
  in
  List.iter (Sweep.submit_exn fpool) (make_requests ~seed_base:20_000 fn);
  check_pass "faults warmup" (Rio.Pool.drain fpool);
  List.iter (Sweep.submit_exn fpool) (make_requests ~seed_base:0 fn);
  let fresults = Rio.Pool.drain fpool in
  check_pass "faults" fresults;
  let fsnap = Rio.Pool.stats fpool in
  Rio.Pool.shutdown fpool;
  let injected = fsnap.Rio.Pool.snap_stats.Rio.Stats.faults_injected in
  pr
    "faults pass: %d requests on %d domains, %d faults injected, %d warm hits, \
     outputs %s\n%!"
    (2 * fn) fd injected fsnap.Rio.Pool.snap_warm_hits
    (if !divergences = 0 then "all identical to native" else "DIVERGED");

  (* ---------------- JSON + gates ---------------- *)
  let eff4 =
    List.find_opt (fun r -> r.pw_domains = 4) rows
    |> Option.map (fun r -> r.pw_eff_par)
  in
  let open Sweep in
  write_json ~path:out_path
    (Obj
       ([ ("schema", Str "rio-parsweep-v1");
          ("quick", Bool quick);
          ("mix", Arr (List.map (fun n -> Str n) (mix_names ~quick)));
          ("divergences", Int !divergences);
          ( "scaling",
            Arr
              (List.map
                 (fun r ->
                   Obj
                     [ ("domains", Int r.pw_domains);
                       ("requests", Int r.pw_requests);
                       ("total_sim_cycles", Int r.pw_total_sim);
                       ("makespan_sim_cycles", Int r.pw_makespan_sim);
                       ("effective_parallelism", Float r.pw_eff_par);
                       ("host_seconds", Float r.pw_host_s);
                       ("steals", Int r.pw_steals);
                       ("warm_hits", Int r.pw_warm_hits);
                       ("cold_boots", Int r.pw_cold_boots) ])
                 rows) );
          ( "warm_reuse",
            Obj
              [ ("warm_seconds", Float !warm_1domain_secs);
                ("fresh_seconds", Float fresh_secs);
                ("speedup", Float warm_speedup) ] );
          ( "faults",
            Obj
              [ ("domains", Int fd);
                ("requests", Int (2 * fn));
                ("faults_injected", Int injected);
                ( "faults_detected",
                  Int fsnap.Rio.Pool.snap_stats.Rio.Stats.faults_detected ) ] );
        ]
       @
       match eff4 with
       | Some e -> [ ("effective_parallelism_at_4", Float e) ]
       | None -> []))
  ;
  (* hard gates: identical outputs always; scaling and warm-reuse
     thresholds in full mode (quick mode runs a 2-domain smoke) *)
  if !divergences > 0 then begin
    pr "!! %d requests diverged from native\n%!" !divergences;
    exit 1
  end;
  (* pre-warming builds every (worker, key) instance at boot, so no
     request — at any domain count — may ever pay a cold boot *)
  List.iter
    (fun r ->
      if r.pw_cold_boots > 0 then begin
        pr "!! %d cold boots at %d domains despite pre-warming\n%!"
          r.pw_cold_boots r.pw_domains;
        exit 1
      end)
    rows;
  if not quick then begin
    (match eff4 with
     | Some e when e < 3.0 ->
         pr "!! effective parallelism %.2f at 4 domains below the 3.0 target\n%!"
           e;
         exit 1
     | _ -> ());
    if warm_speedup < 1.3 then begin
      pr "!! warm-reuse speedup %.2fx below the 1.3x target\n%!" warm_speedup;
      exit 1
    end
  end
