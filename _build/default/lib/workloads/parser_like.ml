(** parser-like: link-grammar natural-language parser (SPEC2000
    197.parser).

    Character: recursive-descent parsing with dictionary hash lookups —
    deep, data-dependent recursion (call/return pairs whose depth
    varies per sentence) plus hash-probe loops.  Stresses the return
    handling of the code cache differently from vortex: the same
    function returns from many recursion depths. *)

open Asm.Dsl

let sentences = 800
let max_depth = 12

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);                     (* parse-score checksum *)
    label "sentence";
    (* derive a "sentence" shape from the counter *)
    mov eax edx;
    imul eax (i 2654435761);
    and_ eax (i 0x7FFFFFFF);
    mov esi eax;                       (* token stream seed *)
    mov ecx (i 0);                     (* depth = 0 *)
    call "parse_np";
    add edi eax;
    inc edx;
    cmp edx (i sentences);
    j l "sentence";
    out edi;
    hlt;
    (* parse a noun phrase: lookup a token, maybe recurse into a
       prepositional phrase, return a constituent score *)
    label "parse_np";
    cmp ecx (i max_depth);
    j nl "leaf";
    push ecx;
    call "dict_lookup";
    pop ecx;
    (* recurse when the looked-up entry's low bits say so *)
    test eax (i 3);
    j z "no_recurse";
    push eax;
    push ecx;
    inc ecx;
    shr esi (i 2);
    call "parse_np";                  (* self-recursion *)
    pop ecx;
    pop ebx;
    add eax ebx;
    ret;
    label "no_recurse";
    ret;
    label "leaf";
    mov eax (i 1);
    ret;
    (* dictionary probe: linear rehash over a 256-entry table *)
    label "dict_lookup";
    mov eax esi;
    and_ eax (i 255);
    mov ebx (i 0);                     (* probe count *)
    label "probe";
    li ecx "dict";
    mov ecx (m ~base:ecx ~index:(eax, 4) ());
    mov ebx ecx;
    and_ ebx (i 0xFF);
    cmp ebx (i 17);                    (* "collision" tag *)
    j nz "hit";
    inc eax;
    and_ eax (i 255);
    jmp "probe";
    label "hit";
    mov eax ecx;
    ret;
  ]

let data =
  [
    label "dict";
    word32
      (List.map
         (* ensure only a sparse set of entries carry the collision tag
            so probes terminate quickly *)
         (fun v -> if v mod 19 = 0 then (v land lnot 0xFF) lor 17 else v)
         (Workload.lcg ~seed:91 256));
  ]

let workload =
  Workload.make ~name:"parser" ~spec_name:"197.parser" ~fp:false
    ~description:
      "recursive-descent parsing with dictionary probes: variable-depth \
       call/return chains"
    (program ~name:"parser" ~entry:"main" ~text ~data ())
