lib/workloads/mcf_like.ml: Asm List Workload
