(** Redundant flag-computation elimination — a fifth optimization
    beyond the paper's four, in the spirit of its "traditional compiler
    optimizations applied dynamically" theme (§4.1).

    Compilers frequently re-test the same condition on both sides of a
    basic-block boundary ([cmp a,b; jle L] … [cmp a,b; jg M]): within a
    block the duplicate is easy to see, but across blocks only a trace's
    linear view exposes it.  A duplicate [cmp]/[test] can be deleted
    when, between the two:

    - no instruction writes any eflags (the duplicate's only effect is
      recomputing what is already there), and
    - none of its source registers or memory operands may have changed
      (same conservative aliasing discipline as {!Rlr}), and
    - no clean call intervenes (the host may do anything).

    Exit CTIs {e are} permitted in between — they only read flags — which
    is exactly the cross-block case that makes this a trace optimization. *)

open Isa
open Rio.Types

type t = { mutable removed : int; mutable examined : int }

let is_flag_setter (i : Rio.Instr.t) =
  match Rio.Instr.get_opcode i with
  | Opcode.Cmp | Opcode.Test -> true
  | _ -> false

(* operands of a cmp/test: both are sources *)
let srcs_of (i : Rio.Instr.t) =
  let insn = Rio.Instr.get_insn i in
  Array.to_list insn.Insn.srcs

let same_comparison (a : Rio.Instr.t) (b : Rio.Instr.t) =
  Opcode.equal (Rio.Instr.get_opcode a) (Rio.Instr.get_opcode b)
  && List.length (srcs_of a) = List.length (srcs_of b)
  && List.for_all2 Operand.equal (srcs_of a) (srcs_of b)

(* does [i] possibly invalidate the comparison's inputs? *)
let clobbers_inputs (cmp_srcs : Operand.t list) (i : Rio.Instr.t) =
  let insn = Rio.Instr.get_insn i in
  let regs_needed =
    List.concat_map Operand.regs_used cmp_srcs
    |> List.sort_uniq Reg.compare
  in
  let mems_needed = List.filter_map (function Operand.Mem m -> Some m | _ -> None) cmp_srcs in
  let writes_reg r =
    Array.exists
      (function Operand.Reg r' -> Reg.equal r r' | _ -> false)
      insn.Insn.dsts
    || (Opcode.implicit_stack_read insn.Insn.opcode
        || Opcode.implicit_stack_write insn.Insn.opcode)
       && Reg.equal r Reg.Esp
  in
  let may_write_mem (m : Operand.mem) =
    Array.exists
      (function
        | Operand.Mem m' -> Rlr.may_alias m' 8 m 4
        | _ -> false)
      insn.Insn.dsts
    || Opcode.implicit_stack_write insn.Insn.opcode
       (* pushes write stack memory: conservatively clobber esp-based
          and unknown-base facts *)
       && List.exists (fun r -> Reg.equal r Reg.Esp) (Operand.mem_regs m)
  in
  insn.Insn.opcode = Opcode.Ccall
  || List.exists writes_reg regs_needed
  || List.exists may_write_mem mems_needed

let optimize_il (t : t) (il : Rio.Instrlist.t) =
  Rio.Instrlist.split_bundles il;
  (* last flag-setting comparison still known valid, if any *)
  let live : Rio.Instr.t option ref = ref None in
  let rec go = function
    | None -> ()
    | Some (i : Rio.Instr.t) ->
        let nxt = i.Rio.Instr.next in
        (if is_flag_setter i then begin
           t.examined <- t.examined + 1;
           match !live with
           | Some prev when same_comparison prev i ->
               Rio.Instrlist.remove il i;
               t.removed <- t.removed + 1
           | _ -> live := Some i
         end
         else begin
           (* any other flag write invalidates the remembered compare *)
           let m = Rio.Instr.get_eflags i in
           if Eflags.write_mask m <> 0 then live := None;
           match !live with
           | Some prev when clobbers_inputs (srcs_of prev) i -> live := None
           | _ -> ()
         end);
        go nxt
  in
  go (Rio.Instrlist.first il)

let make () : client * t =
  let t = { removed = 0; examined = 0 } in
  ( {
      null_client with
      name = "redundant-cmp";
      trace_hook = Some (fun _ctx ~tag:_ il -> optimize_il t il);
      exit_hook =
        (fun rt ->
          Rio.Api.printf rt "redundant-cmp: removed %d of %d comparisons\n"
            t.removed t.examined);
    },
    t )

let client = Stdlib.fst (make ())
