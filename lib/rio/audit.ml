(** Runtime cache auditor (S34): validates DESIGN.md §6 invariants 7
    (cache/link consistency) and 8 (fragment linearity) over the live
    code cache, plus a per-fragment byte checksum that catches
    arbitrary corruption of emitted code.

    The checksum is FNV-1a over the fragment's whole cache image
    [entry, total_end), reduced mod 2^62.  Every step
    [h' = (h lxor byte) * prime] is a bijection on the state space
    (xor with a byte is an involution; multiplication by an odd prime
    is invertible mod a power of two), so {e any} single-byte
    substitution is guaranteed — not merely likely — to change the
    final hash.  Legitimate byte patches (linking, unlinking, fragment
    replacement) refresh the stored checksum; the fault injector
    deliberately does not. *)

open Isa
open Types

let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193
let state_mask = (1 lsl 62) - 1

let fragment_checksum (rt : runtime) (f : fragment) : int =
  let mem = Vm.Machine.mem rt.machine in
  let h = ref fnv_offset in
  for a = f.entry to f.total_end - 1 do
    h := (!h lxor Vm.Memory.read_u8 mem a) * fnv_prime land state_mask
  done;
  !h

(** Re-stamp a fragment's checksum after a legitimate byte patch. *)
let refresh (rt : runtime) (f : fragment) : unit =
  if not f.deleted then f.checksum <- fragment_checksum rt f

(* ------------------------------------------------------------------ *)
(* Per-fragment validation                                            *)
(* ------------------------------------------------------------------ *)

let branch_target fetch pc =
  match Decode.full fetch pc with
  | Ok (insn, _) when Insn.is_cti insn && Insn.num_srcs insn > 0 -> (
      match Insn.src insn 0 with Operand.Target t -> Some t | _ -> None)
  | _ -> None

(** First violation found in [f], or [None].  Checks, in order:
    bytes unchanged since the last legitimate patch (checksum); every
    exit's branch and stub-jump bytes agree with its link state and
    linked targets are live with symmetric incoming entries
    (invariant 7); the body and stubs decode linearly with control
    transfers only at registered exit sites (invariant 8). *)
let check_fragment (rt : runtime) (f : fragment) : string option =
  let fetch = Vm.Memory.fetch (Vm.Machine.mem rt.machine) in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  if fragment_checksum rt f <> f.checksum then
    fail "fragment 0x%x: cache bytes differ from checksummed image" f.tag;
  Array.iter
    (fun e ->
      (match e.linked with
       | Some tgt ->
           if tgt.deleted then
             fail "fragment 0x%x: exit %d linked to deleted fragment 0x%x" f.tag
               e.exit_id tgt.tag
           else if not (List.memq e tgt.incoming) then
             fail "fragment 0x%x: exit %d missing from 0x%x's incoming list"
               f.tag e.exit_id tgt.tag
       | None -> ());
      let expected_branch =
        match e.linked with
        | Some tgt when not e.always_through_stub -> tgt.entry
        | _ -> e.stub_pc
      in
      (match branch_target fetch e.branch_pc with
       | Some t when t = expected_branch -> ()
       | Some t ->
           fail "fragment 0x%x: exit %d branch targets 0x%x, expected 0x%x"
             f.tag e.exit_id t expected_branch
       | None ->
           fail "fragment 0x%x: exit %d branch not decodable" f.tag e.exit_id);
      let expected_stub_jmp =
        match e.linked with
        | Some tgt when e.always_through_stub -> tgt.entry
        | _ -> token_of_exit e
      in
      match branch_target fetch e.stub_jmp_pc with
      | Some t when t = expected_stub_jmp -> ()
      | Some t ->
          fail "fragment 0x%x: exit %d stub jmp targets 0x%x, expected 0x%x"
            f.tag e.exit_id t expected_stub_jmp
      | None ->
          fail "fragment 0x%x: exit %d stub jmp not decodable" f.tag e.exit_id)
    f.exits;
  List.iter
    (fun e ->
      match e.linked with
      | Some tgt when tgt == f -> ()
      | _ ->
          fail "fragment 0x%x: incoming list holds exit %d not linked to it"
            f.tag e.exit_id)
    f.incoming;
  (* linearity: decode the whole image; CTIs only at exit sites *)
  if !err = None then begin
    let allowed = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        Hashtbl.replace allowed e.branch_pc ();
        Hashtbl.replace allowed e.stub_jmp_pc ())
      f.exits;
    let pc = ref f.entry in
    while !err = None && !pc < f.total_end do
      match Decode.full fetch !pc with
      | Error e ->
          fail "fragment 0x%x: undecodable at 0x%x: %s" f.tag !pc
            (Decode.error_to_string e)
      | Ok (insn, len) ->
          if
            Insn.is_cti insn
            && insn.Insn.opcode <> Opcode.Hlt
            && not (Hashtbl.mem allowed !pc)
          then
            fail "fragment 0x%x: stray control transfer at 0x%x" f.tag !pc;
          pc := !pc + len
    done
  end;
  !err

(* ------------------------------------------------------------------ *)
(* Whole-cache audit                                                  *)
(* ------------------------------------------------------------------ *)

let live_fragments (rt : runtime) : fragment list =
  let acc = ref [] in
  List.iter
    (fun ts ->
      let add _ f = if not f.deleted then acc := f :: !acc in
      Fragindex.iter_bbs ts.index add;
      Fragindex.iter_traces ts.index add)
    rt.thread_states;
  (* deterministic order regardless of hashtable iteration *)
  List.sort (fun a b -> compare a.entry b.entry) !acc

(** Audit every live fragment.  Returns the first offender (in cache
    layout order) so the dispatcher's recovery ladder can act on it.
    Charges the modelled per-fragment audit cost. *)
let run (rt : runtime) : (unit, fragment * string) result =
  rt.stats.Stats.audits_run <- rt.stats.Stats.audits_run + 1;
  let frags = live_fragments rt in
  rt.stats.Stats.audit_fragments <-
    rt.stats.Stats.audit_fragments + List.length frags;
  charge rt
    (List.length frags * rt.opts.Options.costs.Options.audit_per_fragment);
  let rec go = function
    | [] -> Ok ()
    | f :: tl -> (
        match check_fragment rt f with
        | None -> go tl
        | Some msg ->
            log_flow rt "audit: %s" msg;
            Error (f, msg))
  in
  go frags
