lib/workloads/art_like.ml: Asm Isa Workload
