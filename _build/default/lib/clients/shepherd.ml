(** Program shepherding (paper §1/§7; Kiriansky, Bruening &
    Amarasinghe, USENIX Security 2002 — the paper's reference [23]).

    A security client, demonstrating that the interface is "general
    enough to be used for purposes other than optimization".  Because
    {e every} piece of code must pass through the basic-block builder
    before it can execute, a client can enforce a code-origin policy
    that is impossible to bypass:

    - {b execution-region policy}: refuse to build (hence execute) any
      block whose origin lies outside the approved code region — this
      stops classic injected-shellcode attacks, where control is
      redirected into attacker-written bytes on the stack or heap;
    - {b return-target policy} (optional): instrument every [ret] with
      a check that the return address about to be used points into the
      approved region — catching stack smashing at the moment of use.

    Violations terminate the application via {!Rio.Types.Client_abort}. *)

open Isa
open Rio.Types

type policy = {
  code_lo : int;  (** approved executable region: [code_lo, code_hi) *)
  code_hi : int;
  check_returns : bool;
}

(** Approve exactly the program image's text segment. *)
let policy_of_image ?(check_returns = true) (img : Asm.Image.t) : policy =
  {
    code_lo = img.Asm.Image.text_base;
    code_hi = img.Asm.Image.text_base + Bytes.length img.Asm.Image.text;
    check_returns;
  }

type t = {
  mutable blocks_vetted : int;
  mutable returns_checked : int;
  mutable violations : int;
}

let in_region p a = a >= p.code_lo && a < p.code_hi

let make (p : policy) : client * t =
  let t = { blocks_vetted = 0; returns_checked = 0; violations = 0 } in
  let bb ctx ~tag (il : Rio.Instrlist.t) =
    (* policy 1: the block's origin must be approved code *)
    if not (in_region p tag) then begin
      t.violations <- t.violations + 1;
      raise
        (Client_abort
           (Printf.sprintf
              "shepherd: attempt to execute code outside the approved region \
               (0x%x not in [0x%x, 0x%x))"
              tag p.code_lo p.code_hi))
    end;
    t.blocks_vetted <- t.blocks_vetted + 1;
    (* policy 2: vet the target of every return at the moment of use *)
    if p.check_returns then
      match Rio.Instrlist.last il with
      | Some last
        when (not (Rio.Instr.is_bundle last))
             && Rio.Instr.get_opcode last = Opcode.Ret ->
          let check =
            Rio.Api.clean_call ctx.rt (fun cctx ->
                t.returns_checked <- t.returns_checked + 1;
                let m = Vm.Machine.mem cctx.rt.machine in
                let sp = Vm.Machine.get_reg cctx.ts.thread Reg.Esp in
                let target = Vm.Memory.read_u32 m sp in
                if not (in_region p target) then begin
                  t.violations <- t.violations + 1;
                  raise
                    (Client_abort
                       (Printf.sprintf
                          "shepherd: return to unapproved address 0x%x" target))
                end)
          in
          Rio.Instrlist.insert_before il last check
      | _ -> ()
  in
  ( {
      null_client with
      name = "shepherd";
      basic_block = Some bb;
      exit_hook =
        (fun rt ->
          Rio.Api.printf rt
            "shepherd: %d blocks vetted, %d returns checked, %d violations\n"
            t.blocks_vetted t.returns_checked t.violations);
    },
    t )
