lib/rio/mangle.ml: Bytes Cond Create Insn Instr Instrlist Isa List Opcode Operand Reg Types
