(** Combinator DSL for writing SynISA assembly in OCaml.

    Workloads are written as lists of {!Ast.item}s:

    {[
      let open Asm.Dsl in
      program ~name:"count" ~entry:"main"
        ~text:
          [
            label "main";
            mov eax (i 0);
            label "loop";
            add eax (i 1);
            cmp eax (i 1000);
            j nz "loop";
            out eax;
            hlt;
          ]
        ()
    ]}

    Register operands are exposed as values ([eax], [f0], …); [i] makes
    immediates; [m ~base ~index ~disp ()] makes memory operands; CTIs
    take label names.  [ins] is the general escape hatch for
    label-dependent operands. *)

open Isa

let program = Ast.program
let label s = Ast.Label s
let align n = Ast.Align n
let bytes s = Ast.Bytes_lit s
let word32 ns = Ast.Word32 (List.map (fun n -> fun _ -> n) ns)
let word32_lbl ls = Ast.Word32 (List.map (fun l -> fun (env : Ast.env) -> env l) ls)
let float64 fs = Ast.Float64 fs
let space n = Ast.Space n

(* -------------------- operands -------------------- *)

let eax = Operand.Reg Reg.Eax
let ecx = Operand.Reg Reg.Ecx
let edx = Operand.Reg Reg.Edx
let ebx = Operand.Reg Reg.Ebx
let esp = Operand.Reg Reg.Esp
let ebp = Operand.Reg Reg.Ebp
let esi = Operand.Reg Reg.Esi
let edi = Operand.Reg Reg.Edi

let f0 = Reg.F.make 0
let f1 = Reg.F.make 1
let f2 = Reg.F.make 2
let f3 = Reg.F.make 3
let f4 = Reg.F.make 4
let f5 = Reg.F.make 5
let f6 = Reg.F.make 6
let f7 = Reg.F.make 7

let i n = Operand.Imm n

let reg_of = function
  | Operand.Reg r -> r
  | _ -> invalid_arg "Dsl: expected register operand"

(** [m ~base ~index ~disp ()] — memory operand. *)
let m ?base ?index ?(disp = 0) () =
  let base = Option.map reg_of base in
  let index = Option.map (fun (o, s) -> (reg_of o, s)) index in
  Operand.mem ?base ?index ~disp ()

(** [mb base ~disp] — simple base+disp memory operand. *)
let mb ?(disp = 0) base = m ~base ~disp ()

(* -------------------- plain instructions -------------------- *)

let ins f = Ast.Ins f
let plain insn = Ast.Ins (fun _ -> insn)

let mov d s = plain (Insn.mk_mov d s)
let movzx8 d s = plain (Insn.mk_movzx8 d s)
let movzx16 d s = plain (Insn.mk_movzx16 d s)
let lea d s = plain (Insn.mk_lea d s)
let push s = plain (Insn.mk_push s)
let pop d = plain (Insn.mk_pop d)
let xchg a b = plain (Insn.mk_xchg a b)
let pushf = plain (Insn.mk_pushf ())
let popf = plain (Insn.mk_popf ())
let add d s = plain (Insn.mk_add d s)
let adc d s = plain (Insn.mk_adc d s)
let sub d s = plain (Insn.mk_sub d s)
let sbb d s = plain (Insn.mk_sbb d s)
let inc d = plain (Insn.mk_inc d)
let dec d = plain (Insn.mk_dec d)
let neg d = plain (Insn.mk_neg d)
let not_ d = plain (Insn.mk_not d)
let cmp a b = plain (Insn.mk_cmp a b)
let test a b = plain (Insn.mk_test a b)
let and_ d s = plain (Insn.mk_and d s)
let or_ d s = plain (Insn.mk_or d s)
let xor d s = plain (Insn.mk_xor d s)
let imul d s = plain (Insn.mk_imul d s)
let idiv s = plain (Insn.mk_idiv s)
let shl d s = plain (Insn.mk_shl d s)
let shr d s = plain (Insn.mk_shr d s)
let sar d s = plain (Insn.mk_sar d s)
let nop = plain (Insn.mk_nop ())
let hlt = plain (Insn.mk_hlt ())
let out s = plain (Insn.mk_out s)
let in_ d = plain (Insn.mk_in d)
let ret = plain (Insn.mk_ret ())
let jmp_ind s = plain (Insn.mk_jmp_ind s)
let call_ind s = plain (Insn.mk_call_ind s)

let fld f src = plain (Insn.mk_fld f src)
let fst_ dst f = plain (Insn.mk_fst dst f)
let fmov d s = plain (Insn.mk_fmov d s)
let fadd d s = plain (Insn.mk_fadd d s)
let fsub d s = plain (Insn.mk_fsub d s)
let fmul d s = plain (Insn.mk_fmul d s)
let fdiv d s = plain (Insn.mk_fdiv d s)
let fabs f = plain (Insn.mk_fabs f)
let fneg f = plain (Insn.mk_fneg f)
let fsqrt f = plain (Insn.mk_fsqrt f)
let fcmp a b = plain (Insn.mk_fcmp a b)
let cvtsi f s = plain (Insn.mk_cvtsi f s)
let cvtfi d f = plain (Insn.mk_cvtfi d f)
let fr f = Operand.Freg f

(* -------------------- label-dependent instructions -------------------- *)

let jmp l = ins (fun env -> Insn.mk_jmp (env l))
let call l = ins (fun env -> Insn.mk_call (env l))

(** [j cond "target"] — conditional branch, e.g. [j nz "loop"]. *)
let j (c : Cond.t) l = ins (fun env -> Insn.mk_jcc c (env l))

(* condition values so call sites read [j nz "loop"] *)
let o = Cond.O and no = Cond.NO
and b = Cond.B and nb = Cond.NB
and z = Cond.Z and nz = Cond.NZ
and be = Cond.BE and nbe = Cond.NBE
and s = Cond.S and ns = Cond.NS
and p = Cond.P and np = Cond.NP
and l = Cond.L and nl = Cond.NL
and le = Cond.LE and nle = Cond.NLE

(** [li r "label"] — load a label's address into a register. *)
let li r lbl = ins (fun env -> Insn.mk_mov r (Operand.Imm (env lbl)))

(** [push_lbl "label"] — push a label's address (e.g. a return target). *)
let push_lbl lbl = ins (fun env -> Insn.mk_push (Operand.Imm (env lbl)))

(** [mabs "label" ~disp] inside [ins]-style closures: absolute memory
    operand at a label. *)
let mabs ?(disp = 0) lbl (env : Ast.env) = Operand.mem_abs (env lbl + disp)

(** [ld r "label"] — load the 32-bit word at a label. *)
let ld r lbl = ins (fun env -> Insn.mk_mov r (mabs lbl env))

(** [st "label" src] — store a register to the word at a label. *)
let st lbl src = ins (fun env -> Insn.mk_mov (mabs lbl env) src)
