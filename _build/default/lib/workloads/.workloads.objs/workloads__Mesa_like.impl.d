lib/workloads/mesa_like.ml: Asm Isa Workload
