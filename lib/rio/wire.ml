(** The serving wire protocol (DESIGN.md §6.10): length-prefixed binary
    frames over a Unix or TCP socket.

    Every frame is a 4-byte little-endian payload length followed by
    the payload.  Integers inside a payload are little-endian: [u8],
    [u32] (values that fit 32 bits: ids, counts, seeds, stream words)
    and [i64] (cycle counts).  Strings are a [u16] length plus raw
    bytes.  The framing is self-describing enough that a client written
    in any language needs only this paragraph.

    Client → server payloads start with an op byte:
    - [1] (run): [u32 id] [str key] [u32 seed] [u32 n] n×[i64 input]
      [u8 has_expect] (then [u32 n] n×[i64 expect] when set).  The id
      is echoed in the response; ids are per-connection and chosen by
      the client.
    - [2] (quit): ask the server to finish outstanding requests and
      exit its accept loop.  No response.

    Server → client responses: [u32 id] [u8 status] [u8 warm]
    [i64 cycles] [u32 n] n×[i64 output].  Status 0 is success; 1 a
    request that ran but failed (divergence, crash, deadline); 2..5
    typed admission rejects, in which case warm/cycles/output are
    zero/empty. *)

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                          *)
(* ------------------------------------------------------------------ *)

exception Closed
(** Peer closed the connection mid-frame. *)

let max_frame = 16 * 1024 * 1024
(* backstop against a corrupt length prefix allocating gigabytes *)

let read_exactly fd n : Bytes.t =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let k = Unix.read fd b !got (n - !got) in
    if k = 0 then raise Closed;
    got := !got + k
  done;
  b

let write_all fd (s : Bytes.t) : unit =
  let len = Bytes.length s in
  let sent = ref 0 in
  while !sent < len do
    let k = Unix.write fd s !sent (len - !sent) in
    if k = 0 then raise Closed;
    sent := !sent + k
  done

(** Read one length-prefixed frame (blocking). *)
let read_frame fd : string =
  let hdr = read_exactly fd 4 in
  let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
  if len < 0 || len > max_frame then
    failwith (Printf.sprintf "Wire: bad frame length %d" len);
  Bytes.unsafe_to_string (read_exactly fd len)

(** Write one length-prefixed frame. *)
let write_frame fd (payload : string) : unit =
  let len = String.length payload in
  if len > max_frame then failwith "Wire: frame too large";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                   *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg (Printf.sprintf "Wire: u32 out of range (%d)" v);
  Buffer.add_int32_le b (Int32.of_int (v land 0xffff_ffff))

let put_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let put_str b s =
  let n = String.length s in
  if n > 0xffff then invalid_arg "Wire: string too long";
  put_u8 b (n land 0xff);
  put_u8 b ((n lsr 8) land 0xff);
  Buffer.add_string b s

(* stream words (inputs, outputs) travel as i64: VM words are host
   ints and may be negative or wider than 32 bits *)
let put_ints b xs =
  put_u32 b (List.length xs);
  List.iter (fun x -> put_i64 b x) xs

(* A tiny cursor-based reader; every decode error is a [Failure] so the
   server can drop a malformed connection instead of crashing. *)
type reader = { src : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.src then failwith "Wire: truncated payload"

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) in
  r.pos <- r.pos + 4;
  v land 0xffff_ffff

let get_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_str r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  let n = lo lor (hi lsl 8) in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_ints r =
  let n = get_u32 r in
  if n > max_frame / 8 then failwith "Wire: bad list length";
  List.init n (fun _ -> get_i64 r)

(* ------------------------------------------------------------------ *)
(* Protocol messages                                                  *)
(* ------------------------------------------------------------------ *)

type client_msg =
  | Run of {
      c_id : int;                  (** client-chosen correlation id *)
      c_key : string;              (** workload key *)
      c_seed : int;
      c_input : int list;
      c_expect : int list option;  (** native reference, if the client has one *)
    }
  | Quit

(** Response status on the wire. *)
type status =
  | St_ok              (** ran to completion, matched any expectation *)
  | St_failed          (** ran but diverged / crashed / hit a deadline *)
  | St_shed            (** admission bound hit: retry later *)
  | St_unknown_key
  | St_quarantined
  | St_stopping

let status_code = function
  | St_ok -> 0
  | St_failed -> 1
  | St_shed -> 2
  | St_unknown_key -> 3
  | St_quarantined -> 4
  | St_stopping -> 5

let status_of_code = function
  | 0 -> St_ok
  | 1 -> St_failed
  | 2 -> St_shed
  | 3 -> St_unknown_key
  | 4 -> St_quarantined
  | 5 -> St_stopping
  | n -> failwith (Printf.sprintf "Wire: bad status code %d" n)

let status_to_string = function
  | St_ok -> "ok"
  | St_failed -> "failed"
  | St_shed -> "shed"
  | St_unknown_key -> "unknown-key"
  | St_quarantined -> "quarantined"
  | St_stopping -> "stopping"

type response = {
  r_id : int;
  r_status : status;
  r_warm : bool;
  r_cycles : int;
  r_output : int list;
}

let encode_client_msg (m : client_msg) : string =
  let b = Buffer.create 64 in
  (match m with
  | Run { c_id; c_key; c_seed; c_input; c_expect } ->
      put_u8 b 1;
      put_u32 b c_id;
      put_str b c_key;
      put_u32 b c_seed;
      put_ints b c_input;
      (match c_expect with
      | None -> put_u8 b 0
      | Some e ->
          put_u8 b 1;
          put_ints b e)
  | Quit -> put_u8 b 2);
  Buffer.contents b

let decode_client_msg (s : string) : client_msg =
  let r = { src = s; pos = 0 } in
  match get_u8 r with
  | 1 ->
      let c_id = get_u32 r in
      let c_key = get_str r in
      let c_seed = get_u32 r in
      let c_input = get_ints r in
      let c_expect =
        match get_u8 r with
        | 0 -> None
        | 1 -> Some (get_ints r)
        | n -> failwith (Printf.sprintf "Wire: bad expect flag %d" n)
      in
      Run { c_id; c_key; c_seed; c_input; c_expect }
  | 2 -> Quit
  | op -> failwith (Printf.sprintf "Wire: bad op byte %d" op)

let encode_response (r : response) : string =
  let b = Buffer.create 32 in
  put_u32 b r.r_id;
  put_u8 b (status_code r.r_status);
  put_u8 b (if r.r_warm then 1 else 0);
  put_i64 b r.r_cycles;
  put_ints b r.r_output;
  Buffer.contents b

let decode_response (s : string) : response =
  let r = { src = s; pos = 0 } in
  let r_id = get_u32 r in
  let r_status = status_of_code (get_u8 r) in
  let r_warm = get_u8 r <> 0 in
  let r_cycles = get_i64 r in
  let r_output = get_ints r in
  { r_id; r_status; r_warm; r_cycles; r_output }

(* ------------------------------------------------------------------ *)
(* Blocking client helpers                                            *)
(* ------------------------------------------------------------------ *)

let send_msg fd (m : client_msg) : unit = write_frame fd (encode_client_msg m)
let recv_response fd : response = decode_response (read_frame fd)
