(** Top-level runtime: create a RIO instance over a machine, attach a
    client, and run the application under the code cache.

    {[
      let m = Vm.Machine.create () in
      let _thread = Asm.Image.load m image in
      let rt = Rio.create m in
      let outcome = Rio.run rt in
      ...
    ]}

    The lifecycle implementation lives in {!Engine}; the
    domain-parallel serving pool in {!Pool}.  This module is the
    library's public face and re-exports both. *)

(* Re-exports: [Rio] is the library's public face. *)
module Level = Level
module Instr = Instr
module Instrlist = Instrlist
module Create = Create
module Options = Options
module Bundle = Bundle
module Stats = Stats
module Types = Types
module Fragindex = Fragindex
module Cachealloc = Cachealloc
module Flags_analysis = Flags_analysis
module Mangle = Mangle
module Emit = Emit
module Guard = Guard
module Audit = Audit
module Faultinject = Faultinject
module Blockbuild = Blockbuild
module Opt = Opt
module Trace = Trace
module Ibl = Ibl
module Dispatch = Dispatch
module Api = Api
module Persist = Persist
module Engine = Engine
module Pool = Pool
module Wire = Wire
module Server = Server

type t = Engine.t

type stop_reason = Engine.stop_reason =
  | All_exited
  | App_fault of string
  | Cycle_limit
  | Deadline_exceeded
  | Crashed of string

type outcome = Engine.outcome = {
  reason : stop_reason;
  cycles : int;
  insns : int;
}

let stats = Engine.stats
let machine = Engine.machine
let options = Engine.options
let flow_log = Engine.flow_log
let create = Engine.create
let enable_flow_log = Engine.enable_flow_log
let make_thread_state = Engine.make_thread_state
let attach_thread_state = Engine.attach_thread_state
let reset_for_reuse = Engine.reset_for_reuse
let run = Engine.run
let stop_reason_to_string = Engine.stop_reason_to_string
