lib/workloads/gcc_like.ml: Asm Fun List Printf Workload
