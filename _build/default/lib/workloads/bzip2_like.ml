(** bzip2-like: block-sorting compression loops (SPEC2000 256.bzip2).

    Character: tight move-to-front coding loops with heavy [inc]/[dec]
    counter traffic and byte loads — high code reuse, no indirect
    branches.  The Pentium-4 strength-reduction client finds its best
    integer material here. *)

open Asm.Dsl

let block = 2048
let passes = 6

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);
    label "pass";
    mov esi (i 0);
    label "mtf";
    li ebx "blockd";
    movzx8 eax (m ~base:ebx ~index:(esi, 1) ());
    and_ eax (i 15);
    (* linear search of the 16-entry recency list *)
    mov ecx (i 0);
    label "find";
    li ebx "recency";
    mov ebp (m ~base:ebx ~index:(ecx, 4) ());
    cmp ebp eax;
    j z "found";
    inc ecx;
    cmp ecx (i 16);
    j l "find";
    mov ecx (i 15);
    label "found";
    add edi ecx;                         (* emit position *)
    (* move-to-front: shift entries [0,ecx) up by one, put eax at 0 *)
    label "shift";
    test ecx ecx;
    j z "place";
    li ebx "recency";
    mov ebp (m ~base:ebx ~index:(ecx, 4) ~disp:(-4) ());
    mov (m ~base:ebx ~index:(ecx, 4) ()) ebp;
    dec ecx;
    jmp "shift";
    label "place";
    li ebx "recency";
    mov (mb ebx) eax;
    inc esi;
    cmp esi (i block);
    j l "mtf";
    inc edx;
    cmp edx (i passes);
    j l "pass";
    out edi;
    hlt;
  ]

let data =
  [
    label "blockd";
    bytes (String.init block (fun k -> Char.chr ((k * 11 mod 16) + ((k / 64) mod 3))));
    align 4;
    label "recency";
    word32 (List.init 16 Fun.id);
  ]

let workload =
  Workload.make ~name:"bzip2" ~spec_name:"256.bzip2" ~fp:false
    ~description:"move-to-front coding loops, inc/dec dense, high reuse"
    (program ~name:"bzip2" ~entry:"main" ~text ~data ())
