lib/workloads/applu_like.ml: Asm Isa Workload
