lib/rio/level.ml: Fmt Int Printf
