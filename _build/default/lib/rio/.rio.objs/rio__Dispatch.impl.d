lib/rio/dispatch.ml: Array Bytes Char Cond Create Decode Emit Flags_analysis Hashtbl Insn Instr Instrlist Isa Level List Mangle Opcode Operand Option Options Printf Reg Stats Types Vm
