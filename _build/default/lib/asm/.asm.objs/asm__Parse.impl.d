lib/asm/parse.ml: Ast Buffer Char Cond Filename Insn Isa List Operand Printf Reg Scanf String
