lib/rio/options.ml:
