(** mgrid-like: multigrid stencil kernel (SPEC2000 172.mgrid).

    Character: deeply loop-dominated FP code whose compiled form —
    like real mgrid at [gcc -O3] on register-starved IA-32 — reloads
    stencil coefficients from stack slots at every basic-block
    boundary.  The hot inner loop applies four 3-tap sections per
    point, with a data-dependent branch between sections (so the
    sections really are separate basic blocks, and only a {e trace}
    can see the reloads are redundant).  Redundant load removal on
    traces eliminates three sections' worth of coefficient reloads,
    which is where the paper's headline ~40% mgrid speedup comes from. *)

open Asm.Dsl

let n = 512          (* grid points per sweep *)
let sweeps = 60

(* stack frame: coefficients spilled by the "compiler" *)
let c0 = mb ebp ~disp:(-8)
let c1 = mb ebp ~disp:(-16)
let c2 = mb ebp ~disp:(-24)
let c3 = mb ebp ~disp:(-32)
let c4 = mb ebp ~disp:(-40)
let c5 = mb ebp ~disp:(-48)

(* one stencil section: reload the six coefficients (the compiler
   spilled them across the preceding branch), then three taps *)
let section off =
  [
    fld f2 c0; fld f3 c1; fld f4 c2; fld f5 c3; fld f6 c4; fld f7 c5;
    (* taps: a[i+off] * ck accumulated into f1 *)
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
             ~disp:(env "grid_a" + (8 * off)) ()));
    fmul f0 (fr f2); fadd f1 (fr f0);
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
             ~disp:(env "grid_a" + (8 * off) + 8) ()));
    fmul f0 (fr f3); fadd f1 (fr f0);
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
             ~disp:(env "grid_a" + (8 * off) + 16) ()));
    fmul f0 (fr f4); fadd f1 (fr f0);
  ]

let text =
  [
    label "main";
    (* frame setup: spill coefficients to the stack *)
    mov ebp esp;
    sub esp (i 64);
    li ebx "coeffs";
    fld f0 (mb ebx); fst_ c0 f0;
    fld f0 (mb ebx ~disp:8); fst_ c1 f0;
    fld f0 (mb ebx ~disp:16); fst_ c2 f0;
    fld f0 (mb ebx ~disp:24); fst_ c3 f0;
    fld f0 (mb ebx ~disp:32); fst_ c4 f0;
    fld f0 (mb ebx ~disp:40); fst_ c5 f0;
    mov esi (i 0);           (* esi: base offset (stays 0; addressing uses edi) *)
    mov edx (i 0);           (* sweep counter *)
    label "sweep";
    mov edi (i 0);           (* point index *)
    label "point";
    (* f1 accumulates the stencil value *)
    fld f1 c0;
    fmul f1 (fr f1);
  ]
  @ section 0
  @ [
      (* a data-dependent branch splits the sections into separate
         basic blocks, as in the original compiled code; the boundary
         path (every 8th point) is cold, so the trace covers the full
         four-section hot path *)
      mov eax edi;
      and_ eax (i 7);
      j z "boundary_point";
    ]
  @ section 1
  @ section 2
  @ section 3
  @ [ jmp "join1"; label "boundary_point" ]
  @ section 1
  @ [ label "join1" ]
  @ [
      (* store the result and advance *)
      ins (fun env ->
          Isa.Insn.mk_fst
            (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
               ~disp:(env "grid_r") ())
            f1);
      inc edi;
      cmp edi (i (n - 3));
      j l "point";
      inc edx;
      cmp edx (i sweeps);
      j l "sweep";
      (* checksum: sum of result grid as truncated ints *)
      mov edi (i 0);
      mov ecx (i 0);
      label "sum";
      ins (fun env ->
          Isa.Insn.mk_fld f0
            (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "grid_r") ()));
      cvtfi eax f0;
      add ecx eax;
      inc edi;
      cmp edi (i (n - 3));
      j l "sum";
      out ecx;
      hlt;
    ]

let data =
  [
    label "coeffs";
    float64 [ 0.05; -0.15; 0.35; 0.2; -0.1; 0.6 ];
    label "grid_a";
    float64 (Workload.lcg_floats ~seed:7 n);
    label "grid_r";
    float64 (List.init n (fun _ -> 0.0));
  ]

let workload =
  Workload.make ~name:"mgrid" ~spec_name:"172.mgrid" ~fp:true
    ~description:
      "FP stencil sweeps; coefficient reloads across block boundaries \
       (redundant-load-removal showcase)"
    (program ~name:"mgrid" ~entry:"main" ~text ~data ())
