lib/isa/encode.mli: Bytes Insn
