(** White-box tests of the mangling and emission layers: the exact
    instruction sequences mangling produces, the byte-level layout of
    emitted fragments and stubs, link/unlink patching, and the
    canonical client view reconstructed by [decode_fragment]. *)

open Isa
open Rio.Types

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_slist = Alcotest.(check (list string))

let opcodes il =
  List.map (fun i -> Opcode.name (Rio.Instr.get_opcode i)) (Rio.Instrlist.to_list il)

(* decoded Level-3 instr at an app address, from real bytes *)
let decoded_at addr insn =
  let raw = Encode.encode_exn ~pc:addr insn in
  let f a = Char.code (Bytes.get raw (a - addr)) in
  let insn', _ = Decode.full_exn f addr in
  Rio.Instr.of_decoded ~addr ~raw insn'

let il_of list =
  let il = Rio.Instrlist.create () in
  List.iter (Rio.Instrlist.append il) list;
  il

(* ------------------------------------------------------------------ *)
(* Mangling                                                           *)
(* ------------------------------------------------------------------ *)

let test_mangle_direct_call () =
  let il = il_of [ decoded_at 0x1000 (Insn.mk_call 0x2000) ] in
  Rio.Mangle.mangle_il ~tid:0 il;
  check_slist "call -> push; jmp" [ "push"; "jmp" ] (opcodes il);
  let push = Option.get (Rio.Instrlist.first il) in
  let call_len = Bytes.length (Encode.encode_exn ~pc:0x1000 (Insn.mk_call 0x2000)) in
  checkb "pushes the app return address" true
    (Operand.equal (Rio.Instr.get_src push 0) (Operand.Imm (0x1000 + call_len)));
  let jmp = Option.get (Rio.Instrlist.last il) in
  checki "jmp to callee" 0x2000 (Operand.get_target (Rio.Instr.get_src jmp 0))

let test_mangle_ret () =
  let il = il_of [ decoded_at 0x1000 (Insn.mk_ret ()) ] in
  Rio.Mangle.mangle_il ~tid:3 il;
  check_slist "ret -> pop; jmp" [ "pop"; "jmp" ] (opcodes il);
  let pop = Option.get (Rio.Instrlist.first il) in
  let slot = tls_addr ~tid:3 ~slot:slot_ibl_target in
  checkb "pops into thread 3's ibl slot" true
    (Operand.equal (Rio.Instr.get_dst pop 0) (Operand.mem_abs slot));
  let jmp = Option.get (Rio.Instrlist.last il) in
  checki "jmp to IND(ret)" (ind_token Ind_ret)
    (Operand.get_target (Rio.Instr.get_src jmp 0))

let test_mangle_jmp_ind_reg () =
  let il = il_of [ decoded_at 0x1000 (Insn.mk_jmp_ind (Operand.Reg Reg.Ecx)) ] in
  Rio.Mangle.mangle_il ~tid:0 il;
  check_slist "jmp* reg -> mov; jmp" [ "mov"; "jmp" ] (opcodes il)

let test_mangle_jmp_ind_mem_spills () =
  (* a memory-indirect jump needs an eax spill around the target copy *)
  let il =
    il_of [ decoded_at 0x1000 (Insn.mk_jmp_ind (Operand.mem_base ~disp:8 Reg.Esi)) ]
  in
  Rio.Mangle.mangle_il ~tid:0 il;
  check_slist "jmp* mem -> spill sequence"
    [ "mov"; "mov"; "mov"; "mov"; "jmp" ]
    (opcodes il)

let test_mangle_call_ind () =
  let il = il_of [ decoded_at 0x1000 (Insn.mk_call_ind (Operand.Reg Reg.Edx)) ] in
  Rio.Mangle.mangle_il ~tid:0 il;
  check_slist "call* -> mov; push; jmp" [ "mov"; "push"; "jmp" ] (opcodes il);
  let jmp = Option.get (Rio.Instrlist.last il) in
  checki "jmp to IND(call*)" (ind_token Ind_call)
    (Operand.get_target (Rio.Instr.get_src jmp 0))

let test_mangle_leaves_plain_code () =
  let il =
    il_of
      [
        Rio.Create.add (Operand.Reg Reg.Eax) (Operand.Imm 1);
        Rio.Create.jcc Cond.Z 0x3000;
        Rio.Create.jmp 0x4000;
      ]
  in
  Rio.Mangle.mangle_il ~tid:0 il;
  check_slist "direct flow untouched" [ "add"; "jz"; "jmp" ] (opcodes il)

let test_inline_check_shape () =
  let flagless = Rio.Mangle.inline_check ~tid:0 ~expected:0x2000 ~kind:Ind_ret ~flags_live:false in
  check_slist "bare check" [ "cmp"; "jnz" ]
    (List.map (fun i -> Opcode.name (Rio.Instr.get_opcode i)) flagless);
  let flagged = Rio.Mangle.inline_check ~tid:0 ~expected:0x2000 ~kind:Ind_ret ~flags_live:true in
  check_slist "flag-preserving check"
    [ "pushf"; "pop"; "cmp"; "jnz"; "push"; "popf" ]
    (List.map (fun i -> Opcode.name (Rio.Instr.get_opcode i)) flagged);
  (* the miss branch carries a flags-restoring stub *)
  let jne = List.nth flagged 3 in
  match Rio.Api.get_custom_stub jne with
  | Some (sil, false) ->
      check_slist "stub restores flags" [ "push"; "popf" ]
        (List.map (fun i -> Opcode.name (Rio.Instr.get_opcode i))
           (Rio.Instrlist.to_list sil))
  | _ -> Alcotest.fail "missing stub note"

(* ------------------------------------------------------------------ *)
(* Emission, linking, cache-resident decode                           *)
(* ------------------------------------------------------------------ *)

(* a minimal runtime over an empty machine *)
let mk_rt () =
  let m = Vm.Machine.create () in
  let rt = Rio.create m in
  let thread = Vm.Machine.add_thread m ~entry:0x1000 ~stack_top:0x7F0000 in
  let ts = Rio.make_thread_state rt thread in
  (rt, ts)

let body_il () =
  il_of
    [
      Rio.Create.add (Operand.Reg Reg.Eax) (Operand.Imm 1);
      Rio.Create.jcc Cond.Z 0x3000;
      Rio.Create.jmp 0x2000;
    ]

let fetch_of rt = Vm.Memory.fetch (Vm.Machine.mem rt.machine)

let test_emit_layout () =
  let rt, ts = mk_rt () in
  let frag = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x1000 (body_il ()) in
  checki "two exits" 2 (Array.length frag.exits);
  checkb "entry below body_end below total_end" true
    (frag.entry < frag.body_end && frag.body_end < frag.total_end);
  (* both exit CTIs initially target their own stubs *)
  Array.iter
    (fun e ->
      let insn, _ = Decode.full_exn (fetch_of rt) e.branch_pc in
      checki "exit targets its stub" e.stub_pc (Operand.get_target (Insn.src insn 0));
      (* and each stub's final jmp targets the exit's trap token *)
      let sj, _ = Decode.full_exn (fetch_of rt) e.stub_jmp_pc in
      checki "stub jmp targets token" (token_of_exit e)
        (Operand.get_target (Insn.src sj 0)))
    frag.exits

let test_link_unlink_patching () =
  let rt, ts = mk_rt () in
  let a = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x1000 (body_il ()) in
  let b = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x2000 (body_il ()) in
  let e = a.exits.(1) (* the jmp exit, target 0x2000 *) in
  checki "direct exit target tag" 0x2000 e.target_tag;
  Rio.Emit.link rt e b;
  let insn, _ = Decode.full_exn (fetch_of rt) e.branch_pc in
  checki "linked branch targets b's entry" b.entry
    (Operand.get_target (Insn.src insn 0));
  checkb "incoming recorded" true (List.memq e b.incoming);
  Rio.Emit.unlink rt e;
  let insn, _ = Decode.full_exn (fetch_of rt) e.branch_pc in
  checki "unlink restores stub target" e.stub_pc
    (Operand.get_target (Insn.src insn 0));
  checkb "incoming cleared" true (b.incoming = [])

let test_decode_fragment_canonical () =
  let rt, ts = mk_rt () in
  let il = body_il () in
  (* attach a custom stub to the jcc so the roundtrip preserves it *)
  let jcc = List.nth (Rio.Instrlist.to_list il) 1 in
  let sil = il_of [ Rio.Create.nop () ] in
  Rio.Api.set_custom_stub jcc sil;
  let frag = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x1000 il in
  (* link one exit: the client view must still show the app target *)
  let b = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x2000 (body_il ()) in
  Rio.Emit.link rt frag.exits.(1) b;
  let view = Rio.Emit.decode_fragment_il rt frag in
  check_slist "client view shape" [ "add"; "jz"; "jmp" ] (opcodes view);
  let vl = Rio.Instrlist.to_list view in
  checki "jcc target is app tag" 0x3000
    (Operand.get_target (Rio.Instr.get_src (List.nth vl 1) 0));
  checki "linked jmp still shows app tag" 0x2000
    (Operand.get_target (Rio.Instr.get_src (List.nth vl 2) 0));
  (match Rio.Api.get_custom_stub (List.nth vl 1) with
   | Some (s, false) -> check_slist "stub survived" [ "nop" ] (opcodes s)
   | _ -> Alcotest.fail "stub note lost")

let test_mangled_ret_roundtrip () =
  (* a mangled ret emits, decodes back to the canonical IND token form *)
  let rt, ts = mk_rt () in
  let il = il_of [ decoded_at 0x1000 (Insn.mk_ret ()) ] in
  Rio.Mangle.mangle_il ~tid:ts.ts_tid il;
  let frag = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x1000 il in
  checkb "one indirect exit" true
    (Array.length frag.exits = 1
    && frag.exits.(0).e_kind = Exit_indirect Ind_ret);
  let view = Rio.Emit.decode_fragment_il rt frag in
  check_slist "view: pop; jmp" [ "pop"; "jmp" ] (opcodes view);
  let jmp = Option.get (Rio.Instrlist.last view) in
  checki "view jmp shows IND(ret)" (ind_token Ind_ret)
    (Operand.get_target (Rio.Instr.get_src jmp 0))

let test_stub_exits_emit () =
  (* an exit CTI inside a custom stub becomes a secondary exit with its
     own stub (the Figure-4 chain mechanism) *)
  let rt, ts = mk_rt () in
  let il = body_il () in
  let jcc = List.nth (Rio.Instrlist.to_list il) 1 in
  let sil =
    il_of
      [
        Rio.Create.cmp (Operand.Reg Reg.Eax) (Operand.Imm 5);
        Rio.Create.jcc Cond.Z 0x5000;
      ]
  in
  Rio.Api.set_custom_stub jcc sil;
  let frag = Rio.Emit.emit_fragment rt ts ~kind:Bb ~tag:0x1000 il in
  checki "three exits (2 body + 1 stub)" 3 (Array.length frag.exits);
  let sec =
    Array.to_list frag.exits
    |> List.find (fun e -> e.target_tag = 0x5000)
  in
  checkb "secondary exit lives in stub space" true (sec.branch_pc >= frag.body_end)

let test_sideline_equivalence () =
  (* sideline optimization must not change behaviour, only accounting *)
  let w = Option.get (Workloads.Suite.by_name "vortex") in
  let n = Workloads.Workload.run_native w in
  let r, rt =
    Workloads.Workload.run_rio
      ~opts:{ Rio.Options.default with sideline = true }
      ~client:(Clients.Compose.all_four ()) w
  in
  checkb "ok" true (r.ok && n.ok);
  Alcotest.(check (list int)) "output equal" n.output r.output;
  checkb "cycles were offloaded" true
    ((Rio.stats rt).Rio.Stats.sideline_cycles > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "emit"
    [
      ( "mangling",
        [
          Alcotest.test_case "direct call" `Quick test_mangle_direct_call;
          Alcotest.test_case "ret" `Quick test_mangle_ret;
          Alcotest.test_case "jmp* via register" `Quick test_mangle_jmp_ind_reg;
          Alcotest.test_case "jmp* via memory spills" `Quick test_mangle_jmp_ind_mem_spills;
          Alcotest.test_case "call*" `Quick test_mangle_call_ind;
          Alcotest.test_case "plain code untouched" `Quick test_mangle_leaves_plain_code;
          Alcotest.test_case "inline check shapes" `Quick test_inline_check_shape;
        ] );
      ( "emission",
        [
          Alcotest.test_case "fragment layout" `Quick test_emit_layout;
          Alcotest.test_case "link/unlink patching" `Quick test_link_unlink_patching;
          Alcotest.test_case "canonical client view" `Quick test_decode_fragment_canonical;
          Alcotest.test_case "mangled ret roundtrip" `Quick test_mangled_ret_roundtrip;
          Alcotest.test_case "exits inside stubs" `Quick test_stub_exits_emit;
        ] );
      ( "sideline",
        [ Alcotest.test_case "equivalence + offload" `Slow test_sideline_equivalence ] );
    ]
