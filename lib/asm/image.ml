(** Assembled program images and loading them into a machine.

    The standard layout places text at 4KB, data at 2MB, the initial
    stack just under 8MB, and leaves everything above 8MB to the
    runtime (code caches, spill slots, trap region). *)

type t = {
  name : string;
  entry : int;
  text_base : int;
  text : Bytes.t;
  data_base : int;
  data : Bytes.t;
  labels : (string * int) list;
}

let default_text_base = 0x1000
let default_data_base = 0x20_0000
let default_stack_top = 0x7F_F000

(** End of the application's address space; the runtime may use
    anything at or above this. *)
let app_space_end = 0x80_0000

let label t name =
  match List.assoc_opt name t.labels with
  | Some a -> a
  | None -> raise (Ast.Unknown_label name)

(** FNV-1a (32-bit) over the image's code-relevant content: entry,
    section bases, and the raw text and data bytes.  A persistent code
    cache records this at save time and refuses to warm-boot over a
    different program — fragments carry source-range checksums of the
    bytes they were built from, so loading them against other text
    would execute stale translations. *)
let digest (t : t) : int =
  let h = ref 0x811c9dc5 in
  let mix_byte b =
    h := !h lxor b;
    h := !h * 0x01000193 land 0xffff_ffff
  in
  let mix_int v =
    mix_byte (v land 0xff);
    mix_byte ((v lsr 8) land 0xff);
    mix_byte ((v lsr 16) land 0xff);
    mix_byte ((v lsr 24) land 0xff)
  in
  mix_int t.entry;
  mix_int t.text_base;
  mix_int t.data_base;
  Bytes.iter (fun c -> mix_byte (Char.code c)) t.text;
  Bytes.iter (fun c -> mix_byte (Char.code c)) t.data;
  !h

(** [load machine image] copies text and data into machine memory and
    creates a thread at the entry point. *)
let load ?(stack_top = default_stack_top) (m : Vm.Machine.t) (t : t) :
    Vm.Machine.thread =
  Vm.Memory.blit_bytes (Vm.Machine.mem m) ~src:t.text ~src_pos:0 ~dst:t.text_base
    ~len:(Bytes.length t.text);
  Vm.Memory.blit_bytes (Vm.Machine.mem m) ~src:t.data ~src_pos:0 ~dst:t.data_base
    ~len:(Bytes.length t.data);
  Vm.Machine.add_thread m ~entry:t.entry ~stack_top

(** [load_cold machine image] copies text and data into machine memory
    without marking the written pages touched or dirty — the loader is
    not the application writing to itself.  For long-lived (pooled)
    machines, so the first between-request reset does not mistake the
    image for request-written state and wipe it.  No thread is
    created; the caller adds one per request. *)
let load_cold (m : Vm.Machine.t) (t : t) : unit =
  Vm.Memory.blit_bytes_raw (Vm.Machine.mem m) ~src:t.text ~src_pos:0
    ~dst:t.text_base ~len:(Bytes.length t.text);
  Vm.Memory.blit_bytes_raw (Vm.Machine.mem m) ~src:t.data ~src_pos:0
    ~dst:t.data_base ~len:(Bytes.length t.data)

(** [restore machine image ~zeroed] re-blits the image slices that
    intersect the just-zeroed ranges (from {!Vm.Memory.zero_touched}),
    returning the byte ranges rewritten.  Pages the previous request
    never wrote still hold correct image bytes and cost nothing. *)
let restore (m : Vm.Machine.t) (t : t) ~(zeroed : (int * int) list) :
    (int * int) list =
  let mem = Vm.Machine.mem m in
  let sections =
    [ (t.text_base, t.text); (t.data_base, t.data) ]
  in
  List.concat_map
    (fun (lo, hi) ->
      List.filter_map
        (fun (base, bytes) ->
          let slo = max lo base and shi = min hi (base + Bytes.length bytes) in
          if slo >= shi then None
          else begin
            Vm.Memory.blit_bytes_raw mem ~src:bytes ~src_pos:(slo - base)
              ~dst:slo ~len:(shi - slo);
            Some (slo, shi)
          end)
        sections)
    zeroed

(** [spawn machine image "worker"] adds another thread entering at the
    given label, with its own stack below the previous thread's. *)
let spawn ?(stack_size = 0x1_0000) (m : Vm.Machine.t) (t : t) entry_label :
    Vm.Machine.thread =
  let n = List.length (Vm.Machine.live_threads m) in
  let stack_top = default_stack_top - (n * stack_size) in
  Vm.Machine.add_thread m ~entry:(label t entry_label) ~stack_top
