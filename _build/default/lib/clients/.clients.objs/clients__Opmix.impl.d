lib/clients/opmix.ml: Hashtbl Isa List Opcode Option Rio Stdlib
