(** Eflags liveness over linear code — the analysis Level 2 exists to
    make cheap (paper §3.1), used to decide whether inserted code must
    preserve the application's flags. *)

val dead_after : Instr.t option -> bool
(** True when the application flags are provably dead at the program
    point before the given instruction: walking forward, every flag is
    written before read without leaving the fragment.  List end and
    exit CTIs are conservative live boundaries. *)

val written_before_read : Instr.t option -> int
(** The set of flags certainly written before any read, as a
    flag-register bit mask. *)

val flags_dead_after : mask:int -> Instr.t option -> bool
(** Like {!dead_after} but for a subset of flags: true when every flag
    in [mask] is written before read, without leaving the fragment
    (what inc→add needs for CF alone). *)

(** {1 Backward register/memory liveness (DESIGN.md §6.4)} *)

type live = {
  live_regs : int;   (** GPR bit set, bit = {!Isa.Reg.number} *)
  live_fregs : int;  (** FP-register bit set, bit = {!Isa.Reg.F.number} *)
  live_flags : int;  (** eflags mask, {!Isa.Eflags} bits *)
}
(** Liveness at a program point, as bit sets. *)

val all_live : live
(** Everything live: the state at every fragment boundary. *)

val live_reg : live -> Isa.Reg.t -> bool
val live_freg : live -> Isa.Reg.F.t -> bool

val backward_liveness : Instrlist.t -> (Instr.t * live) list
(** One backward walk over the list, pairing every instruction with the
    registers, FP registers and flags live {e after} it (returned in
    program order).  Exit CTIs, clean calls, I/O, bundles and the list
    end are all-live boundaries, mirroring {!dead_after}'s
    conservatism. *)

val may_alias : Isa.Operand.mem -> int -> Isa.Operand.mem -> int -> bool
(** [may_alias a wa b wb] — conservative alias test between a
    [wa]-byte access at [a] and a [wb]-byte access at [b]: identical
    address expressions are disjoint exactly when their displacement
    ranges cannot overlap; different bases may point anywhere. *)

val store_dead_after : mem:Isa.Operand.mem -> width:int -> Instr.t option -> bool
(** True when a [width]-byte store to [mem] is provably dead at the
    program point before the given instruction: an equal-address store
    of at least the same width overwrites it before anything could
    observe it (an aliasing read, a barrier leaving the fragment, an
    implicit stack access, or a write to one of its address
    registers). *)
