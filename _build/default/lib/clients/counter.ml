(** Instrumentation example: basic-block and instruction counting.

    Demonstrates the non-optimization uses of the interface (paper §1,
    §7): the static variant only observes code at creation time; the
    dynamic variant inserts a clean call so every {e execution} of
    every basic block is counted — a classic profiling tool. *)

open Rio.Types

type counts = {
  mutable blocks_seen : int;
  mutable static_insns : int;
  mutable dynamic_blocks : int;
  executions : (int, int) Hashtbl.t;  (* tag -> executions (dynamic mode) *)
}

let fresh () =
  { blocks_seen = 0; static_insns = 0; dynamic_blocks = 0; executions = Hashtbl.create 256 }

(** Low-overhead execution counting: instead of a clean call (a full
    context save around a host callback), emit an [inc] on a counter in
    transparently-allocated runtime memory.  The only subtlety is
    eflags: [inc] writes five flags, so the increment is placed bare
    only when the block provably rewrites the flags before reading them
    (the Level-2 liveness analysis again); otherwise it is bracketed
    with a save/restore. *)
let make_emitted () : client * (unit -> (int * int) list) =
  let counters : (int, int) Hashtbl.t = Hashtbl.create 256 in (* tag -> addr *)
  let rt_ref = ref None in
  let bb ctx ~tag (il : Rio.Instrlist.t) =
    rt_ref := Some ctx.rt;
    let addr =
      match Hashtbl.find_opt counters tag with
      | Some a -> a
      | None ->
          let a = Rio.Api.alloc_global ctx.rt ~bytes:4 in
          Hashtbl.replace counters tag a;
          a
    in
    let ctr = Rio.Api.global_opnd addr in
    let flags_dead = Rio.Flags_analysis.dead_after (Rio.Instrlist.first il) in
    let insert i =
      match Rio.Instrlist.first il with
      | Some first -> Rio.Instrlist.insert_before il first i
      | None -> Rio.Instrlist.append il i
    in
    if flags_dead then insert (Rio.Create.inc ctr)
    else begin
      (* order: pushf ends up first *)
      insert (Rio.Create.popf ());
      insert (Rio.Create.inc ctr);
      insert (Rio.Create.pushf ())
    end
  in
  let read () =
    match !rt_ref with
    | None -> []
    | Some rt ->
        Hashtbl.fold (fun tag addr acc -> (tag, Rio.Api.read_global rt addr) :: acc)
          counters []
        |> List.sort compare
  in
  ( {
      null_client with
      name = "counter-emitted";
      basic_block = Some bb;
      exit_hook =
        (fun rt ->
          let total = List.fold_left (fun a (_, c) -> a + c) 0 (read ()) in
          Rio.Api.printf rt "counter-emitted: %d block executions (in-cache counters)\n"
            total);
    },
    read )

let make ?(dynamic = false) () : client * counts =
  let c = fresh () in
  let bb ctx ~tag (il : Rio.Instrlist.t) =
    c.blocks_seen <- c.blocks_seen + 1;
    Rio.Instrlist.split_bundles il;
    c.static_insns <- c.static_insns + Rio.Instrlist.length il;
    if dynamic then begin
      let call =
        Rio.Api.clean_call ctx.rt (fun _ctx ->
            c.dynamic_blocks <- c.dynamic_blocks + 1;
            Hashtbl.replace c.executions tag
              (1 + Option.value (Hashtbl.find_opt c.executions tag) ~default:0))
      in
      match Rio.Instrlist.first il with
      | Some first -> Rio.Instrlist.insert_before il first call
      | None -> Rio.Instrlist.append il call
    end
  in
  ( {
      null_client with
      name = "counter";
      basic_block = Some bb;
      exit_hook =
        (fun rt ->
          Rio.Api.printf rt "counter: %d blocks built, %d static instructions\n"
            c.blocks_seen c.static_insns;
          if dynamic then
            Rio.Api.printf rt "counter: %d dynamic block executions\n"
              c.dynamic_blocks);
    },
    c )

let client = Stdlib.fst (make ())
