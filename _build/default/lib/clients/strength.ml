(** inc→add / dec→sub strength reduction (paper §4.2, Figure 3).

    On the Pentium 4, [inc] is slower than [add 1] because it merges
    into the flags register instead of overwriting it ([inc] preserves
    CF).  On the Pentium 3 the opposite holds.  An architecture-specific
    optimization like this is exactly what a dynamic optimizer can do
    that a static compiler cannot: the binary stays generic and
    specializes itself to the processor it lands on.

    The transformation is flag-correct only when no instruction reads
    CF between the [inc] and the next full CF write — the scan below is
    a direct port of the paper's Figure 3. *)

open Isa
open Rio.Types

type stats = { mutable examined : int; mutable converted : int }

(* Direct port of the paper's inc2add: walk forward from [instr]; if
   CF is read before being written, the transformation is unsafe; if
   CF is written first, it is safe; stopping at an exit CTI is the
   paper's own simplification. *)
let inc2add (il : Rio.Instrlist.t) (instr : Rio.Instr.t) : bool =
  let rec scan (in_ : Rio.Instr.t option) ok_to_replace =
    match in_ with
    | None -> ok_to_replace
    | Some i ->
        if Rio.Instr.is_bundle i then false
        else
          let eflags = Rio.Instr.get_eflags i in
          if Eflags.reads_flag eflags Eflags.CF then false
          else if Eflags.writes_flag eflags Eflags.CF then true
          else if Rio.Instr.is_cti i then
            (* simplification: stop at first exit *)
            false
          else scan i.Rio.Instr.next false
  in
  if not (scan instr.Rio.Instr.next false) then false
  else begin
    let opcode = Rio.Instr.get_opcode instr in
    let dst = Rio.Instr.get_dst instr 0 in
    let replacement =
      match opcode with
      | Opcode.Inc -> Insn.mk_add dst (Operand.Imm 1)
      | Opcode.Dec -> Insn.mk_sub dst (Operand.Imm 1)
      | _ -> assert false
    in
    let in_ = Rio.Create.of_insn replacement in
    Rio.Instr.set_prefixes in_ (Rio.Instr.get_prefixes instr);
    Rio.Instrlist.replace il instr in_;
    true
  end

let optimize_il (il : Rio.Instrlist.t) (st : stats) =
  Rio.Instrlist.split_bundles il;
  let rec go = function
    | None -> ()
    | Some (i : Rio.Instr.t) ->
        let nxt = i.Rio.Instr.next in
        (match Rio.Instr.get_opcode i with
         | Opcode.Inc | Opcode.Dec ->
             st.examined <- st.examined + 1;
             if inc2add il i then st.converted <- st.converted + 1
         | _ -> ());
        go nxt
  in
  go (Rio.Instrlist.first il)

(* ------------------------------------------------------------------ *)

let totals = { examined = 0; converted = 0 }

(** [client] transforms traces only (hot code); [client_bb] additionally
    transforms every basic block, trading build time for coverage. *)
let make ~(on_bb : bool) : client =
  let enabled = ref false in
  let hook _ctx ~tag:_ il = if !enabled then optimize_il il totals in
  {
    null_client with
    name = "strength";
    init =
      (fun rt ->
        totals.examined <- 0;
        totals.converted <- 0;
        enabled := Rio.Api.proc_get_family rt = Vm.Cost.Pentium4);
    basic_block = (if on_bb then Some hook else None);
    trace_hook = Some hook;
    exit_hook =
      (fun rt ->
        if !enabled then
          Rio.Api.printf rt "strength: converted %d out of %d\n" totals.converted
            totals.examined
        else Rio.Api.printf rt "strength: kept original inc/dec\n");
  }

let client = make ~on_bb:false
let client_bb = make ~on_bb:true
