(** SynISA opcodes and their static metadata.

    The set is deliberately IA-32-flavoured: two-operand destructive
    arithmetic, implicit-operand stack and divide instructions, pervasive
    eflags side effects, and dedicated one-byte short forms for the hot
    encodings.  [Ccall] is a runtime-reserved pseudo-opcode used by the
    DynamoRIO layer to implement clean calls (client callbacks emitted
    into the code cache); application code never contains it. *)

type t =
  (* data movement *)
  | Mov
  | Movzx8            (** load 8 bits, zero-extend *)
  | Movzx16           (** load 16 bits, zero-extend *)
  | Lea
  | Push
  | Pop
  | Xchg
  | Pushf             (** push eflags *)
  | Popf              (** pop eflags *)
  (* integer arithmetic *)
  | Add
  | Adc
  | Sub
  | Sbb
  | Inc
  | Dec
  | Neg
  | Cmp
  | Imul              (** two-operand: dst = dst * src *)
  | Idiv              (** eax = eax / src, edx = eax mod src (signed) *)
  (* logic *)
  | And
  | Or
  | Xor
  | Not
  | Test
  (* shifts *)
  | Shl
  | Shr
  | Sar
  (* control transfer *)
  | Jmp               (** direct unconditional *)
  | JmpInd            (** indirect through register/memory *)
  | Jcc of Cond.t
  | Call              (** direct call *)
  | CallInd
  | Ret
  (* floating point (64-bit IEEE double) *)
  | Fld               (** freg <- mem *)
  | Fst               (** mem <- freg *)
  | Fmov              (** freg <- freg *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fabs
  | Fneg
  | Fsqrt
  | Fcmp              (** compare, sets ZF/PF/CF like comisd *)
  | Cvtsi             (** freg <- signed gpr *)
  | Cvtfi             (** gpr <- freg, truncating *)
  (* system *)
  | Nop
  | Hlt
  | Out               (** write gpr to output port (the VM's "syscall") *)
  | In                (** read next value from input port into gpr *)
  | Ccall             (** runtime-reserved: clean call into the host *)

let name = function
  | Mov -> "mov" | Movzx8 -> "movzx8" | Movzx16 -> "movzx16" | Lea -> "lea"
  | Push -> "push" | Pop -> "pop" | Xchg -> "xchg"
  | Pushf -> "pushf" | Popf -> "popf"
  | Add -> "add" | Adc -> "adc" | Sub -> "sub" | Sbb -> "sbb"
  | Inc -> "inc" | Dec -> "dec" | Neg -> "neg" | Cmp -> "cmp"
  | Imul -> "imul" | Idiv -> "idiv"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Not -> "not" | Test -> "test"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
  | Jmp -> "jmp" | JmpInd -> "jmp*" | Jcc c -> "j" ^ Cond.name c
  | Call -> "call" | CallInd -> "call*" | Ret -> "ret"
  | Fld -> "fld" | Fst -> "fst" | Fmov -> "fmov"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fabs -> "fabs" | Fneg -> "fneg" | Fsqrt -> "fsqrt" | Fcmp -> "fcmp"
  | Cvtsi -> "cvtsi" | Cvtfi -> "cvtfi"
  | Nop -> "nop" | Hlt -> "hlt" | Out -> "out" | In -> "in"
  | Ccall -> "ccall"

let equal (a : t) (b : t) = a = b
let pp ppf o = Fmt.string ppf (name o)

(* ------------------------------------------------------------------ *)
(* Eflags effects                                                     *)
(* ------------------------------------------------------------------ *)

(* Flags SynISA instructions leave "undefined" on IA-32 (e.g. AF after
   shifts) are defined here as written-to-zero: a written flag is still
   a written flag for transformation safety, and determinism keeps the
   interpreter testable. *)
let eflags : t -> Eflags.mask =
  let open Eflags in
  function
  | Add | Sub | Cmp | Neg | And | Or | Xor | Test | Imul ->
      write_all
  | Not -> none (* like IA-32: not does not touch flags *)
  | Adc | Sbb -> union (reads [ CF ]) write_all
  | Inc | Dec ->
      (* the paper's strength-reduction example hinges on this:
         inc/dec write every arithmetic flag EXCEPT CF *)
      writes [ PF; AF; ZF; SF; OF ]
  | Shl | Shr | Sar -> write_all
  | Idiv -> write_all
  | Fcmp -> write_all (* like comisd: ZF/PF/CF set, OF/AF/SF zeroed *)
  | Jcc c -> reads (Cond.flags_read c)
  | Popf -> write_all
  | Pushf -> read_all
  | Mov | Movzx8 | Movzx16 | Lea | Push | Pop | Xchg
  | Jmp | JmpInd | Call | CallInd | Ret
  | Fld | Fst | Fmov | Fadd | Fsub | Fmul | Fdiv | Fabs | Fneg | Fsqrt
  | Cvtsi | Cvtfi | Nop | Hlt | Out | In | Ccall ->
      none

(* ------------------------------------------------------------------ *)
(* Control-flow classification                                        *)
(* ------------------------------------------------------------------ *)

type cti_kind =
  | Not_cti
  | Cti_direct_jmp
  | Cti_cond          (** conditional direct branch *)
  | Cti_ind_jmp
  | Cti_direct_call
  | Cti_ind_call
  | Cti_return
  | Cti_halt

let cti_kind = function
  | Jmp -> Cti_direct_jmp
  | Jcc _ -> Cti_cond
  | JmpInd -> Cti_ind_jmp
  | Call -> Cti_direct_call
  | CallInd -> Cti_ind_call
  | Ret -> Cti_return
  | Hlt -> Cti_halt
  | _ -> Not_cti

let is_cti o = cti_kind o <> Not_cti

(** Control transfers whose target is not a static constant: they go
    through the indirect-branch lookup when running out of a code cache. *)
let is_indirect_cti = function
  | JmpInd | CallInd | Ret -> true
  | _ -> false

let is_call = function Call | CallInd -> true | _ -> false

(** Instructions that read memory implicitly (beyond Mem operands). *)
let implicit_stack_read = function
  | Pop | Popf | Ret -> true
  | _ -> false

let implicit_stack_write = function
  | Push | Pushf | Call | CallInd -> true
  | _ -> false

let is_fp = function
  | Fld | Fst | Fmov | Fadd | Fsub | Fmul | Fdiv | Fabs | Fneg | Fsqrt
  | Fcmp | Cvtsi | Cvtfi -> true
  | _ -> false
