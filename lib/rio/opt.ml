(** The in-core trace optimizer (DESIGN.md §6.4).

    Six passes over the client-view trace IL, selected by
    {!Options.effective_passes} and run at trace finalization — after
    the client's trace hook, before mangling and emission — so every
    simulated execution of the trace pays for fewer, cheaper
    instructions.  Hot traces are additionally {e re}-optimized through
    the decode/replace path ({!maybe_reoptimize}) once their entry
    counter crosses [reopt_threshold]: the decoded cache image exposes
    mangled sequences (indirect-branch slot stores, inline checks) the
    finalize-time run never sees.

    Soundness frame: a trace is linear code with a single entrance;
    every exit CTI is a full liveness boundary (registers, memory and —
    matching the system's existing flags fixup — flags on the
    fall-through only).  All passes either rewrite one instruction into
    a cheaper equal-semantics form or delete a provably unobservable
    one, so the instruction count never grows. *)

open Isa
open Types
module FA = Flags_analysis

(** Per-run pass counters; folded into {!Stats.t} by {!run}. *)
type counters = {
  mutable copies : int;            (* register copies propagated *)
  mutable consts : int;            (* constants propagated *)
  mutable strength : int;          (* inc→add / dec→sub conversions *)
  mutable loads_removed : int;     (* redundant loads deleted *)
  mutable loads_rewritten : int;   (* loads turned into reg moves / consts *)
  mutable stores_removed : int;    (* dead stores deleted *)
  mutable dead_removed : int;      (* dead register/flag writes deleted *)
  mutable checks_simplified : int; (* exit-check peepholes applied *)
  mutable flag_saves_elided : int; (* save/restore brackets removed *)
}

let fresh_counters () =
  {
    copies = 0;
    consts = 0;
    strength = 0;
    loads_removed = 0;
    loads_rewritten = 0;
    stores_removed = 0;
    dead_removed = 0;
    checks_simplified = 0;
    flag_saves_elided = 0;
  }

(* ------------------------------------------------------------------ *)
(* Copy / constant propagation                                        *)
(* ------------------------------------------------------------------ *)

(* Forward dataflow over the linear IL: what value a GPR is known to
   hold right now.  [Esp] is never tracked or substituted — the stack
   pointer is load-bearing for every implicit stack operation.  Facts
   are resolved transitively at creation time, so a chain of copies
   collapses to its root and redefinition kills are a single scan. *)
type cp_fact = C_none | C_copy of Reg.t | C_const of int

let copy_prop (c : counters) (il : Instrlist.t) : unit =
  let facts = Array.make 8 C_none in
  let kill (r : Reg.t) =
    facts.(Reg.number r) <- C_none;
    Array.iteri
      (fun j f ->
        match f with
        | C_copy r' when Reg.equal r' r -> facts.(j) <- C_none
        | _ -> ())
      facts
  in
  let kill_all () = Array.fill facts 0 8 C_none in
  let resolve (s : Reg.t) : cp_fact =
    match facts.(Reg.number s) with
    | C_copy r -> C_copy r
    | C_const k -> C_const k
    | C_none -> C_copy s
  in
  (* replacement register for an address component, copies only *)
  let sub_addr_reg (r : Reg.t) : Reg.t option =
    if Reg.equal r Reg.Esp then None
    else
      match facts.(Reg.number r) with
      | C_copy r' when not (Reg.equal r' Reg.Esp) -> Some r'
      | _ -> None
  in
  let subst_mem (m : Operand.mem) : Operand.mem option =
    let changed = ref false in
    let base =
      match m.Operand.base with
      | Some r -> (
          match sub_addr_reg r with
          | Some r' ->
              changed := true;
              Some r'
          | None -> Some r)
      | None -> None
    in
    let index =
      match m.Operand.index with
      | Some (r, s) -> (
          match sub_addr_reg r with
          | Some r' ->
              changed := true;
              Some (r', s)
          | None -> Some (r, s))
      | None -> None
    in
    if !changed then Some { m with Operand.base; Operand.index } else None
  in
  (* try one candidate insn; commit only if the encoder accepts it *)
  let try_commit (i : Instr.t) (candidate : Insn.t) : bool =
    match Insn.validate candidate with
    | Ok () ->
        Instr.set_insn i candidate;
        true
    | Error _ -> false
  in
  Instrlist.iter il (fun i ->
      if not (Instr.is_bundle i) then begin
        let insn = Instr.get_insn i in
        let op = insn.Insn.opcode in
        if (not (Insn.is_cti insn)) && op <> Opcode.Ccall then begin
          (* stage 1: rewrite address registers, uniformly across both
             operand arrays so alu mirror operands stay consistent *)
          let mem_changed = ref 0 in
          let sub_opnd (o : Operand.t) =
            match o with
            | Operand.Mem m -> (
                match subst_mem m with
                | Some m' ->
                    incr mem_changed;
                    Operand.Mem m'
                | None -> o)
            | _ -> o
          in
          let srcs = Array.map sub_opnd insn.Insn.srcs in
          let dsts = Array.map sub_opnd insn.Insn.dsts in
          if !mem_changed > 0 then
            if
              try_commit i
                (Insn.make ~prefixes:insn.Insn.prefixes op ~srcs ~dsts)
            then c.copies <- c.copies + !mem_changed;
          (* stage 2: substitute plain register sources, one at a time;
             positions mirrored in the destination array (alu dst, push's
             esp, idiv's eax) are structural and must stay untouched *)
          let insn = Instr.get_insn i in
          Array.iteri
            (fun k s ->
              match s with
              | Operand.Reg r
                when (not (Reg.equal r Reg.Esp))
                     && not (Array.exists (Operand.equal s) insn.Insn.dsts)
                -> (
                  let commit repl count =
                    let insn = Instr.get_insn i in
                    let srcs = Array.copy insn.Insn.srcs in
                    srcs.(k) <- repl;
                    if
                      try_commit i
                        (Insn.make ~prefixes:insn.Insn.prefixes
                           insn.Insn.opcode ~srcs ~dsts:insn.Insn.dsts)
                    then count ()
                  in
                  match facts.(Reg.number r) with
                  | C_copy r' when not (Reg.equal r' r) ->
                      commit (Operand.Reg r') (fun () ->
                          c.copies <- c.copies + 1)
                  | C_const k' ->
                      commit (Operand.Imm k') (fun () ->
                          c.consts <- c.consts + 1)
                  | _ -> ())
              | _ -> ())
            insn.Insn.srcs
        end;
        (* state update, from the (possibly rewritten) instruction *)
        let insn = Instr.get_insn i in
        if insn.Insn.opcode = Opcode.Ccall then kill_all ()
        else begin
          match (insn.Insn.opcode, insn.Insn.dsts, insn.Insn.srcs) with
          | Opcode.Mov, [| Operand.Reg d |], [| Operand.Reg s |]
            when (not (Reg.equal d Reg.Esp))
                 && (not (Reg.equal s Reg.Esp))
                 && not (Reg.equal d s) ->
              let v = resolve s in
              kill d;
              facts.(Reg.number d) <-
                (match v with
                | C_copy r when Reg.equal r d -> C_none
                | v -> v)
          | Opcode.Mov, [| Operand.Reg d |], [| Operand.Imm k |]
            when not (Reg.equal d Reg.Esp) ->
              kill d;
              facts.(Reg.number d) <- C_const k
          | _ ->
              Array.iter
                (fun dd ->
                  match dd with Operand.Reg r -> kill r | _ -> ())
                insn.Insn.dsts
        end
      end)

(* ------------------------------------------------------------------ *)
(* Strength reduction: inc → add, dec → sub                           *)
(* ------------------------------------------------------------------ *)

(* On the Pentium 4, [inc]/[dec] merge into the flags register instead
   of overwriting it (they preserve CF) and cost 4 cycles to [add]'s 1;
   on the Pentium 3 the original forms are already optimal.  The
   conversion is flag-correct exactly when CF is dead after the
   instruction — [add] clobbers it (paper §4.2, Figure 3). *)
let strength_reduce ~(family : Vm.Cost.family) (c : counters)
    (il : Instrlist.t) : unit =
  if family = Vm.Cost.Pentium4 then
    Instrlist.iter il (fun i ->
        if not (Instr.is_bundle i) then
          match Instr.get_opcode i with
          | (Opcode.Inc | Opcode.Dec) as op
            when FA.flags_dead_after ~mask:(Eflags.bit Eflags.CF)
                   i.Instr.next ->
              let dst = Instr.get_dst i 0 in
              let repl =
                match op with
                | Opcode.Inc -> Insn.mk_add dst (Operand.Imm 1)
                | _ -> Insn.mk_sub dst (Operand.Imm 1)
              in
              let prefixes = Instr.get_prefixes i in
              Instr.set_insn i repl;
              Instr.set_prefixes i prefixes;
              c.strength <- c.strength + 1
          | _ -> ())

(* ------------------------------------------------------------------ *)
(* Redundant load removal                                             *)
(* ------------------------------------------------------------------ *)

(* Forward facts "register r (or FP register f) currently holds the
   value of memory operand M" plus "M currently holds constant k" —
   the same analysis the bundled RLR client runs (paper §4.1), here as
   a core pass so [-O2] gets it without a client.  Loads and moves
   touch no eflags, so every rewrite is flag-safe. *)
type rl_fact =
  | Gpr_holds of Reg.t * Operand.mem * int
  | Fpr_holds of Reg.F.t * Operand.mem * int
  | Mem_const of Operand.mem * int * int  (* mem, value, width *)

let remove_redundant_loads (c : counters) (il : Instrlist.t) : unit =
  let facts = ref [] in
  let fact_mem = function
    | Gpr_holds (_, m, w) -> (m, w)
    | Fpr_holds (_, m, w) -> (m, w)
    | Mem_const (m, _, w) -> (m, w)
  in
  let kill_aliasing (m : Operand.mem) w =
    facts :=
      List.filter
        (fun f ->
          let fm, fw = fact_mem f in
          not (FA.may_alias m w fm fw))
        !facts
  in
  let kill_reg (r : Reg.t) =
    facts :=
      List.filter
        (fun f ->
          let fm, _ = fact_mem f in
          (match f with
          | Gpr_holds (h, _, _) -> not (Reg.equal h r)
          | _ -> true)
          && not (List.exists (Reg.equal r) (Operand.mem_regs fm)))
        !facts
  in
  let kill_freg (fr : Reg.F.t) =
    facts :=
      List.filter
        (function
          | Fpr_holds (h, _, _) -> not (Reg.F.equal h fr)
          | _ -> true)
        !facts
  in
  let kill_esp_based () =
    facts :=
      List.filter
        (fun f ->
          let m, _ = fact_mem f in
          not (List.exists (Reg.equal Reg.Esp) (Operand.mem_regs m)))
        !facts
  in
  let find_gpr (m : Operand.mem) w =
    List.find_map
      (function
        | Gpr_holds (r, fm, fw) when fw = w && Operand.equal_mem fm m ->
            Some r
        | _ -> None)
      !facts
  in
  let find_fpr (m : Operand.mem) =
    List.find_map
      (function
        | Fpr_holds (f, fm, 8) when Operand.equal_mem fm m -> Some f
        | _ -> None)
      !facts
  in
  let find_const (m : Operand.mem) w =
    List.find_map
      (function
        | Mem_const (fm, k, fw) when fw = w && Operand.equal_mem fm m ->
            Some k
        | _ -> None)
      !facts
  in
  let add_fact f = facts := f :: !facts in
  (* generic state transfer for instructions with no special handling *)
  let update_state (i : Instr.t) =
    let insn = Instr.get_insn i in
    Array.iter
      (fun d ->
        match d with
        | Operand.Mem m ->
            let w = if Opcode.is_fp insn.Insn.opcode then 8 else 4 in
            kill_aliasing m w
        | _ -> ())
      insn.Insn.dsts;
    if
      Opcode.implicit_stack_write insn.Insn.opcode
      || Opcode.implicit_stack_read insn.Insn.opcode
    then kill_esp_based ();
    Array.iter
      (fun d ->
        match d with
        | Operand.Reg r -> kill_reg r
        | Operand.Freg f -> kill_freg f
        | _ -> ())
      insn.Insn.dsts;
    if insn.Insn.opcode = Opcode.Ccall then facts := []
  in
  Instrlist.iter il (fun i ->
      if Instr.is_bundle i then facts := []
      else
        let insn = Instr.get_insn i in
        match (insn.Insn.opcode, insn.Insn.dsts, insn.Insn.srcs) with
        (* pure 32-bit load *)
        | Opcode.Mov, [| Operand.Reg r |], [| Operand.Mem m |] -> (
            match find_gpr m 4 with
            | Some r' ->
                if Reg.equal r r' then begin
                  Instrlist.remove il i;
                  c.loads_removed <- c.loads_removed + 1
                end
                else begin
                  Instr.set_insn i
                    (Insn.mk_mov (Operand.Reg r) (Operand.Reg r'));
                  c.loads_rewritten <- c.loads_rewritten + 1;
                  kill_reg r;
                  if not (List.exists (Reg.equal r) (Operand.mem_regs m))
                  then add_fact (Gpr_holds (r, m, 4))
                end
            | None -> (
                match find_const m 4 with
                | Some k ->
                    Instr.set_insn i
                      (Insn.mk_mov (Operand.Reg r) (Operand.Imm k));
                    c.loads_rewritten <- c.loads_rewritten + 1;
                    kill_reg r;
                    if not (List.exists (Reg.equal r) (Operand.mem_regs m))
                    then add_fact (Gpr_holds (r, m, 4))
                | None ->
                    kill_reg r;
                    (* a load whose address uses its own destination
                       cannot be remembered: the address changes with r *)
                    if not (List.exists (Reg.equal r) (Operand.mem_regs m))
                    then add_fact (Gpr_holds (r, m, 4))))
        (* 32-bit store: the register (or constant) mirrors the slot *)
        | Opcode.Mov, [| Operand.Mem m |], [| Operand.Reg r |] ->
            kill_aliasing m 4;
            add_fact (Gpr_holds (r, m, 4))
        | Opcode.Mov, [| Operand.Mem m |], [| Operand.Imm k |] ->
            kill_aliasing m 4;
            add_fact (Mem_const (m, k, 4))
        (* FP load *)
        | Opcode.Fld, [| Operand.Freg f |], [| Operand.Mem m |] -> (
            match find_fpr m with
            | Some f' ->
                if Reg.F.equal f f' then begin
                  Instrlist.remove il i;
                  c.loads_removed <- c.loads_removed + 1
                end
                else begin
                  Instr.set_insn i (Insn.mk_fmov f f');
                  c.loads_rewritten <- c.loads_rewritten + 1;
                  kill_freg f;
                  add_fact (Fpr_holds (f, m, 8))
                end
            | None ->
                kill_freg f;
                add_fact (Fpr_holds (f, m, 8)))
        (* FP store *)
        | Opcode.Fst, [| Operand.Mem m |], [| Operand.Freg f |] ->
            kill_aliasing m 8;
            add_fact (Fpr_holds (f, m, 8))
        | _ -> update_state i)

(* ------------------------------------------------------------------ *)
(* Dead-store and dead-write elimination                              *)
(* ------------------------------------------------------------------ *)

(* Opcodes whose only effects are their declared register/flag writes:
   removing one cannot change memory, I/O, control flow, or raise a
   fault ([idiv] can fault on a zero divisor and stays).  Memory
   destinations are checked separately. *)
let side_effect_free (op : Opcode.t) : bool =
  match op with
  | Opcode.Mov | Opcode.Movzx8 | Opcode.Movzx16 | Opcode.Lea | Opcode.Add
  | Opcode.Adc | Opcode.Sub | Opcode.Sbb | Opcode.Inc | Opcode.Dec
  | Opcode.Neg | Opcode.Cmp | Opcode.Imul | Opcode.And | Opcode.Or
  | Opcode.Xor | Opcode.Not | Opcode.Test | Opcode.Shl | Opcode.Shr
  | Opcode.Sar | Opcode.Fld | Opcode.Fmov | Opcode.Fadd | Opcode.Fsub
  | Opcode.Fmul | Opcode.Fdiv | Opcode.Fabs | Opcode.Fneg | Opcode.Fsqrt
  | Opcode.Fcmp | Opcode.Cvtsi | Opcode.Cvtfi | Opcode.Nop ->
      true
  | _ -> false

(* one backward-liveness round of dead register/flag-write removal *)
let dead_writes_round (c : counters) (il : Instrlist.t) : bool =
  let changed = ref false in
  List.iter
    (fun ((i : Instr.t), (after : FA.live)) ->
      if (not (Instr.is_bundle i)) && not (Instr.is_cti i) then begin
        let insn = Instr.get_insn i in
        let op = insn.Insn.opcode in
        let dsts_dead =
          Array.for_all
            (fun d ->
              match d with
              | Operand.Reg r -> not (FA.live_reg after r)
              | Operand.Freg f -> not (FA.live_freg after f)
              | _ -> false)
            insn.Insn.dsts
        in
        let flag_writes = Eflags.write_mask (Insn.eflags insn) in
        if
          side_effect_free op && dsts_dead
          && flag_writes land after.FA.live_flags = 0
          && (Array.length insn.Insn.dsts > 0
             || flag_writes <> 0 || op = Opcode.Nop)
        then begin
          Instrlist.remove il i;
          c.dead_removed <- c.dead_removed + 1;
          changed := true
        end
      end)
    (FA.backward_liveness il);
  !changed

(* one forward round of dead-store removal *)
let dead_stores_round (c : counters) (il : Instrlist.t) : bool =
  let changed = ref false in
  Instrlist.iter il (fun i ->
      if not (Instr.is_bundle i) then
        let insn = Instr.get_insn i in
        match (insn.Insn.opcode, insn.Insn.dsts, insn.Insn.srcs) with
        | Opcode.Mov, [| Operand.Mem m |], [| (Operand.Reg _ | Operand.Imm _) |]
          when FA.store_dead_after ~mem:m ~width:4 i.Instr.next ->
            Instrlist.remove il i;
            c.stores_removed <- c.stores_removed + 1;
            changed := true
        | Opcode.Fst, [| Operand.Mem m |], [| Operand.Freg _ |]
          when FA.store_dead_after ~mem:m ~width:8 i.Instr.next ->
            Instrlist.remove il i;
            c.stores_removed <- c.stores_removed + 1;
            changed := true
        | _ -> ());
  !changed

(* Each removal can expose more dead code upstream (a store's source
   becomes unused, a flag producer loses its reader), so iterate to a
   fixpoint, bounded to keep the pass linear in practice. *)
let eliminate_dead (c : counters) (il : Instrlist.t) : unit =
  let rec go rounds =
    if rounds > 0 then begin
      let a = dead_writes_round c il in
      let b = dead_stores_round c il in
      if a || b then go (rounds - 1)
    end
  in
  go 4

(* ------------------------------------------------------------------ *)
(* Exit-check peephole                                                *)
(* ------------------------------------------------------------------ *)

(* Two local rewrites around trace exits:

   (a) [mov [slot], r; cmp [slot], $tag] → compare the register
       directly.  The store stays — the IBL reads the slot on a miss —
       but the re-read of the slot (2 modelled cycles) goes away.  This
       fires on decoded cache images, where the mangled slot store is
       visible.

   (b) [jcc T; jmp T] — both arms leave for the same target: the
       conditional is unobservable and is removed (only when it carries
       no custom stub). *)
let simplify_exit_checks (c : counters) (il : Instrlist.t) : unit =
  Instrlist.iter il (fun i ->
      if not (Instr.is_bundle i) then
        let insn = Instr.get_insn i in
        match (insn.Insn.opcode, insn.Insn.dsts, insn.Insn.srcs) with
        | Opcode.Mov, [| Operand.Mem m |], [| Operand.Reg r |] -> (
            match i.Instr.next with
            | Some j when not (Instr.is_bundle j) -> (
                let jn = Instr.get_insn j in
                match (jn.Insn.opcode, jn.Insn.srcs) with
                | Opcode.Cmp, [| Operand.Mem m'; Operand.Imm k |]
                  when Operand.equal_mem m m' ->
                    Instr.set_insn j
                      (Insn.mk_cmp (Operand.Reg r) (Operand.Imm k));
                    c.checks_simplified <- c.checks_simplified + 1
                | _ -> ())
            | _ -> ())
        | Opcode.Jcc _, _, [| Operand.Target t |] -> (
            match (i.Instr.note, i.Instr.next) with
            | Instr.No_note, Some j when not (Instr.is_bundle j) -> (
                let jn = Instr.get_insn j in
                match (jn.Insn.opcode, jn.Insn.srcs, j.Instr.note) with
                | Opcode.Jmp, [| Operand.Target t' |], Instr.No_note
                  when t = t' ->
                    Instrlist.remove il i;
                    c.checks_simplified <- c.checks_simplified + 1
                | _ -> ())
            | _ -> ())
        | _ -> ())

(* ------------------------------------------------------------------ *)
(* Dead flag-save elision                                             *)
(* ------------------------------------------------------------------ *)

(* The trace builder brackets an inline check with a flags save when
   the application's flags were live at fixup time:

     pushf; pop [fslot]; cmp ...; jne(stub=[push [fslot]; popf]); push [fslot]; popf

   Earlier passes can make those flags dead (an inc→add conversion
   downstream now clobbers CF; a dead flag-reader was removed), at
   which point the whole bracket — four instructions plus the stub
   restore — is unobservable on the fall-through, the only path the
   system's flags analysis ever considered (the same criterion
   [fixup_check_flags] applies).  Runs last for exactly this reason. *)
let elide_flag_saves (c : counters) (il : Instrlist.t) : unit =
  let insn_of (i : Instr.t) =
    if Instr.is_bundle i then None else Some (Instr.get_insn i)
  in
  (* anchor on the closing popf so removals stay behind the iterator *)
  Instrlist.iter il (fun p6 ->
      match insn_of p6 with
      | Some i6 when i6.Insn.opcode = Opcode.Popf -> (
          match (p6.Instr.prev : Instr.t option) with
          | Some p5 -> (
              match (insn_of p5, p5.Instr.prev) with
              | Some i5, Some p4
                when i5.Insn.opcode = Opcode.Push
                     && Array.length i5.Insn.srcs > 0 -> (
                  match (i5.Insn.srcs.(0), insn_of p4, p4.Instr.note) with
                  | ( Operand.Mem fslot,
                      Some i4,
                      Instr.Any_note (Stub_note (stub, false)) )
                    when (match i4.Insn.opcode with
                         | Opcode.Jcc _ -> true
                         | _ -> false)
                         && Instrlist.length stub = 2 -> (
                      let stub_ok =
                        match
                          (Instrlist.first stub, Instrlist.last stub)
                        with
                        | Some s1, Some s2 -> (
                            match (insn_of s1, insn_of s2) with
                            | Some j1, Some j2 ->
                                j1.Insn.opcode = Opcode.Push
                                && Array.length j1.Insn.srcs > 0
                                && (match j1.Insn.srcs.(0) with
                                   | Operand.Mem ms ->
                                       Operand.equal_mem ms fslot
                                   | _ -> false)
                                && j2.Insn.opcode = Opcode.Popf
                            | _ -> false)
                        | _ -> false
                      in
                      match (stub_ok, p4.Instr.prev) with
                      | true, Some p3 -> (
                          match (insn_of p3, p3.Instr.prev) with
                          | Some i3, Some p2 when i3.Insn.opcode = Opcode.Cmp
                            -> (
                              match (insn_of p2, p2.Instr.prev) with
                              | Some i2, Some p1
                                when i2.Insn.opcode = Opcode.Pop
                                     && Array.length i2.Insn.dsts > 0
                                     && (match i2.Insn.dsts.(0) with
                                        | Operand.Mem md ->
                                            Operand.equal_mem md fslot
                                        | _ -> false) -> (
                                  match insn_of p1 with
                                  | Some i1
                                    when i1.Insn.opcode = Opcode.Pushf
                                         && FA.dead_after p6.Instr.next ->
                                      Instrlist.remove il p1;
                                      Instrlist.remove il p2;
                                      Instrlist.remove il p5;
                                      Instrlist.remove il p6;
                                      p4.Instr.note <- Instr.No_note;
                                      c.flag_saves_elided <-
                                        c.flag_saves_elided + 1
                                  | _ -> ())
                              | _ -> ())
                          | _ -> ())
                      | _ -> ())
                  | _ -> ())
              | _ -> ())
          | None -> ())
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Pass driver                                                        *)
(* ------------------------------------------------------------------ *)

let run_pass ~(family : Vm.Cost.family) (c : counters) (il : Instrlist.t) :
    Options.opt_pass -> unit = function
  | Options.Copy_prop -> copy_prop c il
  | Options.Strength -> strength_reduce ~family c il
  | Options.Load_removal -> remove_redundant_loads c il
  | Options.Dead_store -> eliminate_dead c il
  | Options.Exit_peephole -> simplify_exit_checks c il
  | Options.Flag_elide -> elide_flag_saves c il

(** Run [passes] in order over [il].  [always_save_flags] suppresses
    the flag-save elision (that ablation must keep every bracket). *)
let run_passes ?(always_save_flags = false) ~(family : Vm.Cost.family)
    (c : counters) (passes : Options.opt_pass list) (il : Instrlist.t) : unit =
  List.iter
    (fun p ->
      match p with
      | Options.Flag_elide when always_save_flags -> ()
      | p -> run_pass ~family c il p)
    passes

let fold_into_stats (s : Stats.t) (c : counters) : unit =
  s.Stats.opt_copies_propagated <- s.Stats.opt_copies_propagated + c.copies;
  s.Stats.opt_consts_propagated <- s.Stats.opt_consts_propagated + c.consts;
  s.Stats.opt_strength_reduced <- s.Stats.opt_strength_reduced + c.strength;
  s.Stats.opt_loads_removed <- s.Stats.opt_loads_removed + c.loads_removed;
  s.Stats.opt_loads_rewritten <-
    s.Stats.opt_loads_rewritten + c.loads_rewritten;
  s.Stats.opt_stores_removed <- s.Stats.opt_stores_removed + c.stores_removed;
  s.Stats.opt_dead_removed <- s.Stats.opt_dead_removed + c.dead_removed;
  s.Stats.opt_checks_simplified <-
    s.Stats.opt_checks_simplified + c.checks_simplified;
  s.Stats.opt_flag_saves_elided <-
    s.Stats.opt_flag_saves_elided + c.flag_saves_elided

let family_of (rt : runtime) : Vm.Cost.family =
  (Vm.Machine.cost rt.machine).Vm.Cost.family

(* run the configured pipeline over one IL, with cost charging and
   stats folding shared by the finalize-time and re-optimization paths *)
let run_configured (rt : runtime) (il : Instrlist.t)
    (passes : Options.opt_pass list) : unit =
  let n0 = Instrlist.length il in
  let c = fresh_counters () in
  run_passes ~always_save_flags:rt.opts.Options.always_save_flags
    ~family:(family_of rt) c passes il;
  charge_opt rt
    (n0 * List.length passes * rt.opts.Options.costs.Options.opt_per_insn_pass);
  let s = rt.stats in
  s.Stats.opt_traces <- s.Stats.opt_traces + 1;
  s.Stats.opt_insns_removed <-
    s.Stats.opt_insns_removed + (n0 - Instrlist.length il);
  fold_into_stats s c

(** Optimize a freshly finalized trace IL in place (called between the
    client's trace hook and mangling/emission).  No-op at [-O0]. *)
let run (rt : runtime) (il : Instrlist.t) : unit =
  match Options.effective_passes rt.opts with
  | [] -> ()
  | passes -> run_configured rt il passes

(* ------------------------------------------------------------------ *)
(* Static cost model                                                  *)
(* ------------------------------------------------------------------ *)

(** Estimate the per-execution cycle cost of an IL under the machine's
    cost model: base cycles per instruction plus the memory-access
    charges for every memory operand.  Branch outcomes are unknowable
    statically, so predictor effects are ignored — but the estimate is
    only ever {e compared} between two versions of the same trace,
    where those terms cancel. *)
let estimate_cost (rt : runtime) (il : Instrlist.t) : int =
  let cost = Vm.Machine.cost rt.machine in
  let total = ref 0 in
  Instrlist.iter il (fun i ->
      if not (Instr.is_bundle i) then begin
        let insn = Instr.get_insn i in
        total := !total + Vm.Cost.base_cycles cost insn.Insn.opcode;
        Array.iter
          (function
            | Operand.Mem _ -> total := !total + cost.Vm.Cost.mem_read
            | _ -> ())
          insn.Insn.srcs;
        Array.iter
          (function
            | Operand.Mem _ -> total := !total + cost.Vm.Cost.mem_write
            | _ -> ())
          insn.Insn.dsts
      end);
  !total

(* ------------------------------------------------------------------ *)
(* Hot-trace re-optimization (paper §3.4)                             *)
(* ------------------------------------------------------------------ *)

(* Carry surviving guards from a replaced body onto its replacement.
   The classic passes rewrite and delete instructions but never add
   exit CTIs, so when the exit counts match, the arrays align
   one-to-one by position; when they differ (the exit peephole removed
   a jcc/jmp pair) the positional map is invalid and the guards are
   dropped — execution stays correct, the guards just lose their
   despeculation budget. *)
let rebind_guards (old_frag : fragment) (fresh : fragment) : unit =
  if
    old_frag.guards <> []
    && Array.length fresh.exits = Array.length old_frag.exits
  then
    fresh.guards <-
      List.filter_map
        (fun g ->
          let ord = ref (-1) in
          Array.iteri
            (fun k e -> if e.exit_id = g.g_exit_id then ord := k)
            old_frag.exits;
          if !ord >= 0 then begin
            g.g_exit_id <- fresh.exits.(!ord).exit_id;
            Some g
          end
          else None)
        old_frag.guards

(* Decode the trace's cache image, re-run the pipeline (the mangled
   view exposes slot stores the finalize-time run could not see), and
   swap the body in through the delayed-delete replace path — but only
   when the cost model says the optimized body is actually cheaper per
   execution (satellite fix for the -O2 per-bench regressions: an
   optimization that makes a trace worse is not installed). *)
let reoptimize (rt : runtime) (ts : thread_state) (frag : fragment) : fragment =
  let passes = Options.effective_passes rt.opts in
  let il = Emit.decode_fragment_il rt frag in
  let before = estimate_cost rt il in
  run_configured rt il passes;
  let after = estimate_cost rt il in
  if after >= before then begin
    rt.stats.Stats.opt_replaces_skipped <-
      rt.stats.Stats.opt_replaces_skipped + 1;
    log_flow rt "reopt of trace 0x%x skipped (cost %d -> %d)" frag.tag before
      after;
    frag
  end
  else
    match Emit.replace_fragment rt ts frag il with
    | fresh ->
        fresh.reopted <- true;
        fresh.exec_count <- frag.exec_count;
        rebind_guards frag fresh;
        rt.stats.Stats.traces_reoptimized <-
          rt.stats.Stats.traces_reoptimized + 1;
        log_flow rt "reoptimized trace 0x%x" frag.tag;
        fresh
    | exception Emit.No_room _ ->
        (* the trace region cannot host the replacement right now; keep
           running the original body *)
        log_flow rt "reopt of trace 0x%x dropped (no room)" frag.tag;
        frag

(* ------------------------------------------------------------------ *)
(* Despeculation (DESIGN.md §6.7)                                     *)
(* ------------------------------------------------------------------ *)

(* Re-optimize a trace without a violated constant assumption: the
   guard's conditional side exit becomes an unconditional exit to the
   same deoptimization target (the unoptimized constituent block, or
   the IBL), its compare and flags-save bracket are deleted, and the
   now unreachable tail of the trace is truncated.  Speculation cannot
   be locally undone — constant folding may have propagated the
   assumed value arbitrarily far — so cutting at the guard is the only
   sound way to drop exactly one assumption while keeping the
   profitable prefix. *)
let despec_cut (rt : runtime) (ts : thread_state) (frag : fragment)
    (g : guard) : fragment =
  (* in every outcome, stop retrying this guard *)
  let give_up () =
    frag.guards <- List.filter (fun g' -> g' != g) frag.guards;
    frag
  in
  let victim_ord = ref (-1) in
  Array.iteri
    (fun k e -> if e.exit_id = g.g_exit_id then victim_ord := k)
    frag.exits;
  if !victim_ord < 0 then give_up ()
  else begin
    let il = Emit.decode_fragment_il rt frag in
    (* locate the victim exit CTI: the !victim_ord-th exit in IL order *)
    let ord = ref (-1) in
    let victim = ref None in
    Instrlist.iter il (fun i ->
        if Emit.exit_info i <> None then begin
          incr ord;
          if !ord = !victim_ord then victim := Some i
        end);
    let opcode_of i =
      if Instr.is_bundle i then None else Some (Instr.get_opcode i)
    in
    match !victim with
    | Some jne
      when (match opcode_of jne with Some (Opcode.Jcc _) -> true | _ -> false)
      -> begin
        match jne.Instr.prev with
        | Some cmp when opcode_of cmp = Some Opcode.Cmp ->
            let target =
              match Insn.src (Instr.get_insn jne) 0 with
              | Operand.Target t -> t
              | _ -> -1
            in
            if target < 0 then give_up ()
            else begin
              (* delete the flags-save bracket, if fixup inserted one *)
              let fslot =
                Mangle.abs_slot ~tid:ts.ts_tid slot_eflags
              in
              (match cmp.Instr.prev with
               | Some pop
                 when opcode_of pop = Some Opcode.Pop
                      && Insn.num_dsts (Instr.get_insn pop) > 0
                      && Operand.equal (Insn.dst (Instr.get_insn pop) 0) fslot
                 -> (
                   match pop.Instr.prev with
                   | Some pushf when opcode_of pushf = Some Opcode.Pushf ->
                       Instrlist.remove il pushf;
                       Instrlist.remove il pop
                   | _ -> ())
               | _ -> ());
              Instrlist.remove il cmp;
              (* unconditional exit to the deopt target; no stub note —
                 with the compare gone there are no flags to restore *)
              let cut = Create.jmp target in
              Instrlist.insert_after il jne cut;
              Instrlist.remove il jne;
              (* truncate the unreachable tail *)
              let rec trunc () =
                match Instrlist.last il with
                | Some last when last != cut ->
                    Instrlist.remove il last;
                    trunc ()
                | _ -> ()
              in
              trunc ();
              match Emit.replace_fragment rt ts frag il with
              | fresh ->
                  fresh.exec_count <- frag.exec_count;
                  fresh.reopted <- frag.reopted;
                  (* guards whose exits precede the cut survive; the
                     victim and everything after it are gone *)
                  fresh.guards <-
                    List.filter_map
                      (fun g' ->
                        if g' == g then None
                        else begin
                          let ord' = ref (-1) in
                          Array.iteri
                            (fun k e ->
                              if e.exit_id = g'.g_exit_id then ord' := k)
                            frag.exits;
                          if
                            !ord' >= 0
                            && !ord' < !victim_ord
                            && !ord' < Array.length fresh.exits
                            && fresh.exits.(!ord').e_kind
                               = frag.exits.(!ord').e_kind
                          then begin
                            g'.g_exit_id <- fresh.exits.(!ord').exit_id;
                            Some g'
                          end
                          else None
                        end)
                      frag.guards;
                  rt.stats.Stats.spec_despecs <-
                    rt.stats.Stats.spec_despecs + 1;
                  (* remember the verdict in the index: constant
                     folding at this site is now known unstable, so
                     future trace builds (here, after a flush, or in a
                     pool worker prewarmed with this index) skip it
                     instead of rebuilding the same doomed guard *)
                  Fragindex.set_nospec ts.index g.g_site;
                  log_flow rt "despeculated trace 0x%x at site 0x%x" frag.tag
                    g.g_site;
                  fresh
              | exception Emit.No_room _ ->
                  log_flow rt "despec of trace 0x%x dropped (no room)"
                    frag.tag;
                  give_up ()
            end
        | _ -> give_up ()
      end
    | _ -> give_up ()
  end

(* A spent indirect-target guard means the application changed phase:
   the dominant successor the trace was specialized for is no longer
   where control goes.  Cutting at the guard would leave a truncated
   trace ending in a bare IBL exit — strictly worse than the inline
   check it replaces.  The profitable "re-optimize without the
   assumption" is to start over: delete the trace, forget the stale
   successor profile, and re-arm the head counter so the head warms up
   again over the *current* phase and rebuilds with a guard on the new
   dominant target.  The lifecycle is repeatable — each phase change
   despecs the old specialization and relearns the next. *)
let despec_rebuild (rt : runtime) (ts : thread_state) (frag : fragment)
    (g : guard) : fragment =
  Emit.delete_fragment rt ts frag;
  (match Fragindex.find ts.index g.g_site with
   | Some e -> e.Fragindex.prof <- None
   | None -> ());
  (match Fragindex.find ts.index frag.tag with
   | Some e when e.Fragindex.head >= 0 -> e.Fragindex.head <- 0
   | _ -> ());
  rt.stats.Stats.spec_despecs <- rt.stats.Stats.spec_despecs + 1;
  log_flow rt "despeculated trace 0x%x (rebuild) at site 0x%x" frag.tag
    g.g_site;
  frag

(** Drop one spent speculative assumption; dispatches on what was
    assumed.  A constant-load guard is cut out of the trace in place;
    an indirect-target guard deletes the trace and relearns (see
    [despec_rebuild]).  The returned fragment may be deleted — callers
    in the violation paths ignore it and continue through the normal
    dispatch lookup, which no longer finds the dead trace. *)
let despeculate (rt : runtime) (ts : thread_state) (frag : fragment)
    (g : guard) : fragment =
  match g.g_kind with
  | G_const when not frag.loaded -> despec_cut rt ts frag g
  | G_const ->
      (* a loaded body has no IL round-trip to cut the guard out of;
         rebuild instead, but keep the cut path's verdict so the
         relearned trace skips the unstable speculation *)
      Fragindex.set_nospec ts.index g.g_site;
      despec_rebuild rt ts frag g
  | G_ind _ -> despec_rebuild rt ts frag g

(* Deferred-optimization threshold: traces are emitted unoptimized and
   only invest in the pass pipeline once they prove hot, so cold traces
   never pay for passes (or the replace) that cannot amortize.  Entry
   counts undercount hotness — a trace spinning in its own loop never
   re-enters the dispatcher — so the threshold is a low bar ("entered
   again after being built"), not a high-water mark.  The legacy
   [--reopt N] knob, when set, overrides the built-in default. *)
let defer_threshold (rt : runtime) : int =
  match rt.opts.Options.reopt_threshold with Some thr -> thr | None -> 2

(** Called on every fragment entry from the dispatcher and the IBL.
    At [opt_level >= 1] it counts trace entries and optimizes a trace
    in place (decode/replace, cost-gated) once it proves hot.  Guard
    budgets are {e not} polled here — a self-looping trace may never
    re-enter through the dispatcher, so despeculation fires from the
    violation paths themselves.  Returns the fragment to actually
    enter. *)
let maybe_reoptimize (rt : runtime) (ts : thread_state) (frag : fragment) :
    fragment =
  if frag.kind <> Trace || frag.deleted || rt.opts.Options.opt_level < 1 then
    frag
  else begin
    frag.exec_count <- frag.exec_count + 1;
    if (not frag.reopted) && frag.exec_count >= defer_threshold rt then begin
      (* marked before the attempt so a failed replacement is not
         retried on every subsequent entry *)
      frag.reopted <- true;
      reoptimize rt ts frag
    end
    else frag
  end
