(** Mangling: rewriting application control transfers into forms a code
    cache can execute while preserving transparency (original program
    addresses everywhere the application can observe them).

    - direct [call]  → [push $app_return_addr; jmp callee]
    - [ret]          → [pop [tls ibl_slot]; jmp IND(ret)]
    - indirect [jmp] → [store target to tls ibl_slot; jmp IND(jmp-ind)]
    - indirect [call]→ [store; push $app_return_addr; jmp IND(call-ind)]

    [IND(k)] is the pseudo-target {!Types.ind_token}: the emitted form
    jumps into the exit stub that reaches the indirect-branch lookup.

    The trace builder additionally inserts {e inline target checks}
    ({!inline_check}) so that staying on the trace avoids the lookup
    (paper §2, §4.3). *)

open Isa
open Types

let abs_slot ~tid slot = Operand.mem_abs (tls_addr ~tid ~slot)

(** Instructions that store the value of [rm] (the target operand of an
    indirect CTI) into the thread's IBL target slot. *)
let store_target_to_slot ~tid (rm : Operand.t) : Instr.t list =
  let slot = abs_slot ~tid slot_ibl_target in
  match rm with
  | Operand.Reg _ -> [ Create.mov slot rm ]
  | Operand.Mem _ ->
      (* memory-to-memory moves don't encode: spill eax around the copy *)
      let spill = abs_slot ~tid slot_spill0 in
      let eax = Operand.Reg Reg.Eax in
      [
        Create.mov spill eax;
        Create.mov eax rm;
        Create.mov slot eax;
        Create.mov eax spill;
      ]
  | _ -> rio_error "indirect CTI with non-rm target"

(** Rewrite every application CTI that needs it ([call], [call*],
    [jmp*], [ret]) into cache-executable form, in place.  Non-CTI
    instructions and direct jumps/branches pass through.  Notes on
    replaced CTIs (custom stubs) migrate to the replacement jump. *)
let mangle_il ~tid (il : Instrlist.t) : unit =
  let return_addr_of (i : Instr.t) : int =
    let app_addr = Instr.addr i in
    if app_addr = 0 then rio_error "cannot mangle a synthetic call (no return address)";
    match i.Instr.payload with
    | Instr.Full { raw = Some raw; raw_valid = true; _ } | Instr.Raw { raw; _ }
    | Instr.RawOp { raw; _ } ->
        app_addr + Bytes.length raw
    | _ -> rio_error "call without original raw bytes"
  in
  let replace_with_jmp (i : Instr.t) target =
    let jmp = Create.jmp target in
    jmp.Instr.note <- i.Instr.note;
    Instrlist.replace il i jmp
  in
  let mangle_one (i : Instr.t) =
    match Instr.get_opcode i with
    | Opcode.Call ->
        let insn = Instr.get_insn i in
        let target = Operand.get_target (Insn.src insn 0) in
        let ret_addr = return_addr_of i in
        Instrlist.insert_before il i (Create.push (Operand.Imm ret_addr));
        replace_with_jmp i target
    | Opcode.CallInd ->
        let insn = Instr.get_insn i in
        let rm = Insn.src insn 0 in
        let ret_addr = return_addr_of i in
        List.iter (Instrlist.insert_before il i) (store_target_to_slot ~tid rm);
        Instrlist.insert_before il i (Create.push (Operand.Imm ret_addr));
        replace_with_jmp i (ind_token Ind_call)
    | Opcode.JmpInd ->
        let insn = Instr.get_insn i in
        let rm = Insn.src insn 0 in
        List.iter (Instrlist.insert_before il i) (store_target_to_slot ~tid rm);
        replace_with_jmp i (ind_token Ind_jmp)
    | Opcode.Ret ->
        Instrlist.insert_before il i (Create.pop (abs_slot ~tid slot_ibl_target));
        replace_with_jmp i (ind_token Ind_ret)
    | _ -> ()
  in
  let rec walk = function
    | None -> ()
    | Some (i : Instr.t) ->
        let nxt = i.Instr.next in
        if not (Instr.is_bundle i) then mangle_one i;
        walk nxt
  in
  walk (Instrlist.first il)

(** Build the inline target check a trace inserts after a mangled
    indirect branch whose {e expected} (inlined) next tag is known:

    {v
    cmp [ibl_slot], $expected
    jne IND(k)          ; miss: restore flags in the stub, then lookup
    v}

    When the application's flags are live at this point, the check is
    bracketed with a save, and both the fall-through and the miss stub
    restore them (the restore instructions for the stub are attached
    via {!Types.Stub_note} on the [jne]). *)
let inline_check ~tid ~(expected : int) ~(kind : ind_kind) ~flags_live :
    Instr.t list =
  let slot = abs_slot ~tid slot_ibl_target in
  let fslot = abs_slot ~tid slot_eflags in
  let cmp = Create.cmp slot (Operand.Imm expected) in
  let jne = Create.jcc Cond.NZ (ind_token kind) in
  if not flags_live then [ cmp; jne ]
  else begin
    let stub = Instrlist.create () in
    Instrlist.append stub (Create.push fslot);
    Instrlist.append stub (Create.popf ());
    jne.Instr.note <- Instr.Any_note (Stub_note (stub, false));
    [
      Create.pushf ();
      Create.pop fslot;
      cmp;
      jne;
      Create.push fslot;
      Create.popf ();
    ]
  end
