examples/shepherding.mli:
