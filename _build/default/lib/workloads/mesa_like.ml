(** mesa-like: software 3D rendering pipeline (SPEC2000 177.mesa).

    Character: a vertex pipeline mixing FP transform arithmetic with
    integer fixed-point conversion, dispatched through a {e state-driven
    function pointer} (mesa selects shading/transform paths from GL
    state) that changes between batches — the indirect target is stable
    within a batch and switches across batches, which is the
    interesting regime for trace inline checks. *)

open Asm.Dsl

let verts = 256
let batches = 30

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);                      (* batch *)
    mov edi (i 0);                      (* raster checksum *)
    label "batch";
    (* pick the pipeline function for this batch's "GL state" *)
    mov eax edx;
    shr eax (i 2);                      (* state changes every 4 batches *)
    and_ eax (i 1);
    li ebx "pipeline";
    mov eax (m ~base:ebx ~index:(eax, 4) ());
    st "current_xf" eax;
    mov esi (i 0);                      (* vertex index *)
    label "vertex";
    ld eax "current_xf";
    call_ind eax;
    inc esi;
    cmp esi (i verts);
    j l "vertex";
    inc edx;
    cmp edx (i batches);
    j l "batch";
    out edi;
    hlt;
    (* --- transform variants: project vertex esi, rasterize to int --- *)
    label "xf_flat";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Esi, 8) ~disp:(env "vx") ()));
    ins (fun env -> Isa.Insn.mk_fld f1 (Isa.Operand.mem_abs (env "mscale")));
    fmul f0 (fr f1);
    cvtfi eax f0;
    and_ eax (i 0xFFFF);
    add edi eax;
    ret;
    label "xf_smooth";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Esi, 8) ~disp:(env "vx") ()));
    ins (fun env ->
        Isa.Insn.mk_fld f1
          (Isa.Operand.mem ~index:(Isa.Reg.Esi, 8) ~disp:(env "vn") ()));
    fadd f0 (fr f1);
    ins (fun env -> Isa.Insn.mk_fld f1 (Isa.Operand.mem_abs (env "mscale")));
    fmul f0 (fr f1);
    fabs f0;
    cvtfi eax f0;
    and_ eax (i 0xFFFF);
    shl eax (i 1);
    add edi eax;
    ret;
  ]

let data =
  [
    label "pipeline";
    word32_lbl [ "xf_flat"; "xf_smooth" ];
    label "current_xf";
    word32 [ 0 ];
    label "mscale";
    float64 [ 37.5 ];
    label "vx";
    float64 (Workload.lcg_floats ~seed:71 verts);
    label "vn";
    float64 (Workload.lcg_floats ~seed:73 verts);
  ]

let workload =
  Workload.make ~name:"mesa" ~spec_name:"177.mesa" ~fp:true
    ~description:
      "vertex pipeline via state-selected function pointers: phase-stable \
       indirect targets"
    (program ~name:"mesa" ~entry:"main" ~text ~data ())
