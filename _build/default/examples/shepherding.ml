(** Program shepherding (paper §7's security use case): the same
    infrastructure that optimizes code can refuse to run code that
    violates a security policy — and, unlike any static scheme, it
    cannot be bypassed, because all code must pass through the
    basic-block builder before execution.

    {v dune exec examples/shepherding.exe v}

    Two classic attacks are simulated: jumping to "shellcode" planted
    in the data segment, and smashing a return address.  Both run
    happily on the native machine; both are stopped by the shepherd. *)

open Asm.Dsl

(* "shellcode": real encoded instructions planted in the data segment
   (out $666; hlt) — position-independent, so we can encode them at
   pc 0 and drop the bytes anywhere *)
let shellcode =
  let b = Buffer.create 8 in
  List.iter
    (fun insn -> Buffer.add_bytes b (Isa.Encode.encode_exn ~pc:0 insn))
    [ Isa.Insn.mk_out (Isa.Operand.Imm 666); Isa.Insn.mk_hlt () ];
  Buffer.contents b

let inject_attack =
  program ~name:"inject" ~entry:"main"
    ~text:[ label "main"; li eax "payload"; jmp_ind eax ]
    ~data:[ label "payload"; bytes shellcode ]
    ()

let smash_attack =
  program ~name:"smash" ~entry:"main"
    ~text:
      [
        label "main";
        call "victim";
        out (i 1);   (* never reached in the attack *)
        hlt;
        label "victim";
        (* overwrite the return address with the shellcode address *)
        ins (fun env -> Isa.Insn.mk_mov (mb esp) (Isa.Operand.Imm (env "payload")));
        ret;
      ]
    ~data:[ label "payload"; bytes shellcode ]
    ()

let run_native prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Vm.Sched.run ~emulate:false m);
  Vm.Machine.output m

let run_shepherded prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let client, _ = Clients.Shepherd.make (Clients.Shepherd.policy_of_image image) in
  let rt = Rio.create ~client m in
  let o = Rio.run rt in
  (Vm.Machine.output m, Rio.stop_reason_to_string o.Rio.reason,
   Rio.Api.client_output rt)

let show name prog =
  Printf.printf "=== %s ===\n" name;
  Printf.printf "  native (defenseless): output [%s]  <- the attack succeeds\n"
    (String.concat "; " (List.map string_of_int (run_native prog)));
  let out, reason, client_says = run_shepherded prog in
  Printf.printf "  shepherded: output [%s], %s\n"
    (String.concat "; " (List.map string_of_int out))
    reason;
  Printf.printf "  %s\n" client_says

let () =
  show "attack 1: jump to shellcode in the data segment" inject_attack;
  show "attack 2: smashed return address" smash_attack;
  (* and a legitimate program is untouched *)
  let w = Option.get (Workloads.Suite.by_name "vortex") in
  let image = Asm.Assemble.assemble w.Workloads.Workload.program in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let client, t = Clients.Shepherd.make (Clients.Shepherd.policy_of_image image) in
  let rt = Rio.create ~client m in
  let o = Rio.run rt in
  Printf.printf "=== legitimate program (vortex-like) ===\n";
  Printf.printf "  %s; %d blocks vetted, %d returns checked, %d violations\n"
    (Rio.stop_reason_to_string o.Rio.reason)
    t.Clients.Shepherd.blocks_vetted t.Clients.Shepherd.returns_checked
    t.Clients.Shepherd.violations
