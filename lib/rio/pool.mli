(** Domain-parallel serving pool: N worker domains, each holding warm
    long-lived {!Engine.t} instances whose code caches survive across
    requests, with work-stealing dispatch and bounded in-flight
    backpressure (DESIGN.md §6.5). *)

type boot = {
  boot_machine : unit -> Vm.Machine.t;
      (** create a machine with the program image cold-loaded
          (see {!Asm.Image.load_cold}); no thread yet *)
  boot_entry : int;
  boot_stack_top : int;
  boot_restore : Vm.Machine.t -> zeroed:(int * int) list -> (int * int) list;
      (** re-blit image slices over just-zeroed pages
          (see {!Asm.Image.restore}) *)
  boot_opts : Options.t;
  boot_client : unit -> Types.client;
      (** fresh client per instance: client state must be per-domain *)
}

type request = {
  req_key : string;  (** workload key; selects the boot and the warm instance *)
  req_seed : int;
  req_input : int list;          (** full input stream for this request *)
  req_expect : int list option;  (** expected output (native reference), if known *)
}

type result = {
  res_key : string;
  res_seed : int;
  res_worker : int;        (** domain that executed the request *)
  res_home : int;          (** domain the request was sharded to *)
  res_stolen : bool;
  res_warm : bool;         (** served by an already-warm instance *)
  res_output : int list;
  res_reason : Engine.stop_reason;
  res_cycles : int;        (** simulated cycles for this request *)
  res_insns : int;
  res_blocks_built : int;  (** basic blocks built during this request *)
  res_secs : float;        (** host wall-clock seconds *)
  res_ok : bool;           (** exited normally and matched [req_expect] *)
}

type snapshot = {
  snap_domains : int;
  snap_submitted : int;
  snap_completed : int;
  snap_steals : int;
  snap_warm_hits : int;
  snap_cold_boots : int;
  snap_busy_cycles : int array;  (** per-worker simulated cycles served *)
  snap_stats : Stats.t;          (** merge over all live warm instances *)
}

type t

val create :
  ?max_inflight:int ->
  ?affinity:bool ->
  domains:int ->
  boots:(string * boot) list ->
  unit ->
  t
(** Spawn the worker domains.  [max_inflight] (default 64) bounds
    submitted-but-incomplete requests: {!submit} blocks at the cap.
    [affinity] shards by key hash instead of round-robin. *)

val domains : t -> int

val submit : t -> request -> unit
(** Enqueue on the request's home worker; blocks while the in-flight
    cap is reached.  @raise Invalid_argument after {!shutdown}. *)

val drain : t -> result list
(** Wait until every submitted request has completed; return (and
    clear) the accumulated results in completion order. *)

val reset_counters : t -> unit
(** Zero steal/warm/busy counters between measurement passes.  Call
    only when drained. *)

val stats : t -> snapshot
(** Counters plus runtime stats merged across all live warm instances.
    Merged stats are coherent only when the pool is quiescent. *)

val shutdown : t -> unit
(** Stop accepting work, let workers finish queued requests, join the
    domains. *)
