(** gap-like: computer-algebra interpreter (SPEC2000 254.gap).

    Character: like perlbmk, an indirect dispatch loop — but over {e
    one} long-running computation instead of many short ones, so the
    dispatch sites are hot and stable and adaptive optimization has
    time to pay off.  The target distribution is skewed toward the
    arithmetic handlers. *)

open Asm.Dsl

let steps = 14000

let text =
  [
    label "main";
    mov ebp esp;
    mov eax (i 1);                      (* accumulator *)
    mov ecx (i 1);                      (* operand *)
    mov edx (i 0);                      (* step counter *)
    label "loop";
    (* choose an operation: skewed toward add/mul *)
    mov esi edx;
    and_ esi (i 7);
    cmp esi (i 5);
    j l "arith";
    mov esi (i 0);                      (* 6,7 -> op 0 as well (skew) *)
    label "arith";
    li ebx "ops";
    mov esi (m ~base:ebx ~index:(esi, 4) ());
    jmp_ind esi;
    label "op_addm";
    add eax ecx;
    and_ eax (i 0xFFFFF);
    jmp "step";
    label "op_mulm";
    imul eax (i 3);
    and_ eax (i 0xFFFFF);
    jmp "step";
    label "op_subm";
    sub eax ecx;
    and_ eax (i 0xFFFFF);
    jmp "step";
    label "op_gcd_step";
    (* one Euclid step on (eax, ecx) *)
    test ecx ecx;
    j z "step";
    mov esi eax;
    mov eax ecx;
    push edx;
    mov edx (i 0);
    xchg eax esi;
    idiv ecx;                           (* eax = eax/ecx, edx = rem *)
    mov eax ecx;
    mov ecx edx;
    pop edx;
    jmp "step";
    label "op_rot";
    shl eax (i 3);
    or_ eax (i 1);
    and_ eax (i 0xFFFFF);
    jmp "step";
    label "step";
    add ecx (i 7);
    and_ ecx (i 0x3FFF);
    inc edx;
    cmp edx (i steps);
    j l "loop";
    out eax;
    hlt;
  ]

let data =
  [
    label "ops";
    word32_lbl [ "op_addm"; "op_mulm"; "op_addm"; "op_subm"; "op_gcd_step"; "op_rot" ];
  ]

let workload =
  Workload.make ~name:"gap" ~spec_name:"254.gap" ~fp:false
    ~description:
      "long-running arithmetic interpreter: hot, stable indirect dispatch \
       (adaptive optimization pays off)"
    (program ~name:"gap" ~entry:"main" ~text ~data ())
