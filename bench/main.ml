(** Benchmark harness: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md §4 for the experiment index).

    {v
    dune exec bench/main.exe            # everything
    dune exec bench/main.exe table1     # one artifact
    dune exec bench/main.exe -- --help
    v}

    Table 1 and Figure 5 report {e simulated cycles} (deterministic);
    Table 2 reports real wall-clock time of this host's decoder and
    encoder via Bechamel, plus exact heap accounting. *)

open Workloads

let pr fmt = Printf.printf fmt

(* shared sweep scaffolding (CLI parsing, JSON emission, native checks)
   lives in [Sweep]; alias the helpers used throughout *)
let geomean = Sweep.geomean

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  pr "\n=== Table 1: performance of interpreter features (crafty, vpr) ===\n";
  pr "%-28s %10s %10s\n" "System Type" "crafty" "vpr";
  let wl = [ Option.get (Suite.by_name "crafty"); Option.get (Suite.by_name "vpr") ] in
  let native = List.map (fun w -> float_of_int (Workload.run_native w).cycles) wl in
  List.iter
    (fun (name, opts) ->
      let opts = { opts with Rio.Options.max_cycles = max_int / 2 } in
      let ratios =
        List.map2
          (fun w n ->
            let r, _ = Workload.run_rio ~opts w in
            if not r.Workload.ok then
              failwith (Printf.sprintf "table1: %s under %s: %s" w.name name r.detail);
            float_of_int r.cycles /. n)
          wl native
      in
      match ratios with
      | [ c; v ] -> pr "%-28s %10.1f %10.1f\n" name c v
      | _ -> assert false)
    Rio.Options.table1_configs;
  pr "(paper: ~300/~300, 26.1/26.0, 5.1/3.0, 2.0/1.2, 1.7/1.1)\n%!"

(* Extended Table 1: the same five configurations over the whole suite
   (not part of the paper; an appendix-style completeness check). *)
let table1x () =
  pr "\n=== Table 1 (extended): all workloads x all configurations ===\n";
  pr "%-9s" "bench";
  List.iter (fun (n, _) -> pr " %12s" n) Rio.Options.table1_configs;
  pr "\n";
  List.iter
    (fun w ->
      let native = float_of_int (Workload.run_native w).cycles in
      pr "%-9s" w.Workload.name;
      List.iter
        (fun (_, opts) ->
          let opts = { opts with Rio.Options.max_cycles = max_int / 2 } in
          let r, _ = Workload.run_rio ~opts w in
          if not r.Workload.ok then failwith (w.Workload.name ^ ": failed");
          pr " %12.1f" (float_of_int r.cycles /. native))
        Rio.Options.table1_configs;
      pr "\n%!")
    Suite.all

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

(* Harvest the basic blocks of every workload by linear sweep of its
   text segment. *)
let harvest_blocks () : (Bytes.t * int) list =
  List.concat_map
    (fun w ->
      let image = Asm.Assemble.assemble w.Workload.program in
      let text = image.Asm.Image.text in
      let base = image.Asm.Image.text_base in
      let fetch a = Char.code (Bytes.get text (a - base)) in
      let stop = base + Bytes.length text in
      let blocks = ref [] in
      let rec go start pc =
        if pc >= stop then begin
          if pc > start then blocks := (start, pc) :: !blocks
        end
        else
          match Isa.Decode.opcode_eflags fetch pc with
          | Error _ -> if pc > start then blocks := (start, pc) :: !blocks
          | Ok (op, len) ->
              if Isa.Opcode.is_cti op then begin
                blocks := (start, pc + len) :: !blocks;
                go (pc + len) (pc + len)
              end
              else go start (pc + len)
      in
      go base base;
      List.map (fun (s, e) -> (Bytes.sub text (s - base) (e - s), s)) !blocks)
    Suite.all

(* One "decode" pass over a block at each representation level,
   mirroring §3.1's measurement. *)
let level_pass (lvl : int) (raw : Bytes.t) (addr : int) : Rio.Instr.t list =
  let fetch a = Char.code (Bytes.get raw (a - addr)) in
  let stop = addr + Bytes.length raw in
  match lvl with
  | 0 ->
      (* find the final boundary (scan) but keep one bundle *)
      let rec scan pc =
        if pc >= stop then () else scan (pc + Isa.Decode.boundary_exn fetch pc)
      in
      scan addr;
      [ Rio.Instr.of_bundle ~addr (Bytes.copy raw) ]
  | 1 | 2 | 3 | 4 ->
      let rec split pc acc =
        if pc >= stop then List.rev acc
        else
          let len = Isa.Decode.boundary_exn fetch pc in
          let piece = Bytes.sub raw (pc - addr) len in
          let i = Rio.Instr.of_raw ~addr:pc piece in
          (match lvl with
           | 1 -> ()
           | 2 -> Rio.Instr.uplevel2 i
           | 3 -> Rio.Instr.uplevel3 i
           | _ ->
               Rio.Instr.uplevel3 i;
               Rio.Instr.invalidate_raw i);
          split (pc + len) (i :: acc)
      in
      split addr []
  | _ -> invalid_arg "level_pass"

let encode_pass (instrs : Rio.Instr.t list) ~addr : int =
  List.fold_left
    (fun pc i ->
      let b = Rio.Instr.encode ~pc i in
      pc + Bytes.length b)
    addr instrs

let run_ols elt =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.6) () in
  let res = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Toolkit.Instance.monotonic_clock res in
  match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> nan

let table2 () =
  pr "\n=== Table 2: decode+encode cost per representation level ===\n";
  let blocks = harvest_blocks () in
  let nblocks = List.length blocks in
  pr "(%d basic blocks harvested from the %d workloads)\n" nblocks
    (List.length Suite.all);
  pr "%-7s %14s %16s\n" "Level" "Time (us)" "Memory (bytes)";
  let open Bechamel in
  List.iter
    (fun lvl ->
      let test =
        Test.make
          ~name:(Printf.sprintf "level%d" lvl)
          (Staged.stage (fun () ->
               List.iter
                 (fun (raw, addr) ->
                   let il = level_pass lvl raw addr in
                   ignore (encode_pass il ~addr))
                 blocks))
      in
      let ns_per_pass = run_ols (List.hd (Test.elements test)) in
      let us_per_block = ns_per_pass /. 1000.0 /. float_of_int nblocks in
      let mem =
        List.fold_left
          (fun acc (rawb, addr) ->
            let il = level_pass lvl rawb addr in
            acc + (8 * Obj.reachable_words (Obj.repr il)))
          0 blocks
      in
      pr "%-7d %14.3f %16.1f\n%!" lvl us_per_block
        (float_of_int mem /. float_of_int nblocks))
    [ 0; 1; 2; 3; 4 ];
  pr "(paper: 2.12/64, 12.42/629, 13.01/629, 19.10/792, 61.79/792 — shape:\n";
  pr " time and memory increase with level; L4 encode far costlier than L3)\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 1: dispatch flow                                            *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  pr "\n=== Figure 1: system flow (observed dispatch events, gzip) ===\n";
  let w = Option.get (Suite.by_name "gzip") in
  let image = Asm.Assemble.assemble w.program in
  let m = Vm.Machine.create () in
  Vm.Machine.set_input m w.input;
  ignore (Asm.Image.load m image);
  let rt = Rio.create m in
  Rio.enable_flow_log rt;
  ignore (Rio.run rt);
  let log = Rio.flow_log rt in
  pr "first 14 events:\n";
  List.iteri (fun k e -> if k < 14 then pr "  %2d. %s\n" (k + 1) e) log;
  let starts_with p e =
    String.length e >= String.length p && String.sub e 0 (String.length p) = p
  in
  let count p = List.length (List.filter (starts_with p) log) in
  pr "event counts over the whole run:\n";
  List.iter
    (fun p -> pr "  %-14s %6d\n" p (count p))
    [ "dispatch"; "build bb"; "start trace"; "built trace"; "enter trace";
      "ibl hit"; "ibl miss"; "halted" ];
  pr "(the flow matches Figure 1: dispatch -> bb builder -> code cache;\n";
  pr " exits return to dispatch until linked; traces take over hot code)\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 2: representation levels                                    *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  pr "\n=== Figure 2: one instruction sequence at five levels ===\n";
  let open Isa in
  (* the paper's sequence, transliterated to SynISA *)
  let seq =
    [
      Insn.mk_lea (Operand.Reg Reg.Esi) (Operand.mem_bi Reg.Ecx (Reg.Eax, 1));
      Insn.mk_mov (Operand.Reg Reg.Eax) (Operand.mem_base ~disp:0xc Reg.Esi);
      Insn.mk_sub (Operand.Reg Reg.Eax) (Operand.mem_base ~disp:0x1c Reg.Esi);
      Insn.mk_movzx16 (Operand.Reg Reg.Ecx) (Operand.mem_base ~disp:8 Reg.Esi);
      Insn.mk_shl (Operand.Reg Reg.Ecx) (Operand.Imm 7);
      Insn.mk_cmp (Operand.Reg Reg.Eax) (Operand.Reg Reg.Ecx);
      Insn.mk_jcc Cond.NL 0x77f52269;
    ]
  in
  let addr0 = 0x77f51800 in
  let bytes, _ =
    List.fold_left
      (fun (acc, pc) insn ->
        let b = Encode.encode_exn ~pc insn in
        (acc @ [ b ], pc + Bytes.length b))
      ([], addr0) seq
  in
  let raw = Bytes.concat Bytes.empty bytes in
  let hex = Disasm.hex_bytes in
  pr "Level 0  (one bundle, only the final boundary known):\n";
  pr "  raw: %s\n" (hex raw);
  pr "Level 1  (split, un-decoded):\n";
  List.iter (fun b -> pr "  %s\n" (hex b)) bytes;
  pr "Level 2  (opcode + eflags):\n";
  List.iter2
    (fun b insn ->
      pr "  %-26s %-8s %s\n" (hex b)
        (Opcode.name insn.Insn.opcode)
        (Fmt.str "%a" Eflags.pp_mask (Insn.eflags insn)))
    bytes seq;
  pr "Level 3  (fully decoded, raw bits valid):\n";
  List.iter2
    (fun b insn ->
      pr "  %-26s %-30s %s\n" (hex b)
        (Disasm.insn_to_string insn)
        (Fmt.str "%a" Eflags.pp_mask (Insn.eflags insn)))
    bytes seq;
  pr "Level 4  (modified: raw bits invalid, re-encode from operands):\n";
  List.iter
    (fun insn ->
      pr "  %-26s %-30s %s\n" "-"
        (Disasm.insn_to_string insn)
        (Fmt.str "%a" Eflags.pp_mask (Insn.eflags insn)))
    seq;
  pr "%!"

(* ------------------------------------------------------------------ *)
(* Figure 4: indirect-branch dispatch rewrite                         *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  pr "\n=== Figure 4: adaptive indirect-branch dispatch (eon trace) ===\n";
  let w = Option.get (Suite.by_name "eon") in
  let image = Asm.Assemble.assemble w.program in
  let m = Vm.Machine.create () in
  Vm.Machine.set_input m w.input;
  ignore (Asm.Image.load m image);
  let before = ref None in
  let capture =
    {
      Rio.Types.null_client with
      name = "capture";
      trace_hook =
        Some
          (fun _ ~tag:_ il ->
            if !before = None then begin
              let b = Buffer.create 256 in
              Rio.Instrlist.iter il (fun i ->
                  Buffer.add_string b ("    " ^ Rio.Instr.to_string i ^ "\n"));
              before := Some (Buffer.contents b)
            end);
    }
  in
  let client = Clients.Compose.compose [ capture; Clients.Ibdispatch.make () ] in
  let rt = Rio.create ~client m in
  ignore (Rio.run rt);
  pr "-- trace as first created (client view, before any rewrite):\n%s"
    (Option.value !before ~default:"  (no trace built)\n");
  let ts = List.hd rt.Rio.Types.thread_states in
  let any_trace =
    let r = ref None in
    Rio.Fragindex.iter_traces ts.Rio.Types.index (fun _ f -> r := Some f);
    !r
  in
  (match any_trace with
   | None -> pr "-- no live trace\n"
   | Some frag ->
       let fetch = Vm.Memory.fetch (Vm.Machine.mem m) in
       pr "-- the same trace in the cache after %d adaptive rewrite(s)\n"
         (Rio.stats rt).Rio.Stats.fragments_replaced;
       pr "   (body, then exit stubs with the inserted compare chain):\n";
       List.iter (pr "    %s\n")
         (Isa.Disasm.region fetch ~pc:frag.Rio.Types.entry
            ~len:(frag.Rio.Types.total_end - frag.Rio.Types.entry)));
  pr "%s%!" (Rio.Api.client_output rt)

(* ------------------------------------------------------------------ *)
(* Figure 5                                                           *)
(* ------------------------------------------------------------------ *)

let figure5_bars () =
  [
    ("base", fun () -> Rio.Types.null_client);
    ("rlr", fun () -> Clients.Rlr.make ());
    ("strength", fun () -> Clients.Strength.make ~on_bb:false);
    ("ibdispatch", fun () -> Clients.Ibdispatch.make ());
    ("ctraces", fun () -> Stdlib.fst (Clients.Ctraces.make ()));
    ("combined", fun () -> Clients.Compose.all_four ());
  ]

let figure5 () =
  pr "\n=== Figure 5: normalized execution time (ratio to native; <1 is faster) ===\n";
  let bars = figure5_bars () in
  pr "%-9s %5s" "bench" "";
  List.iter (fun (n, _) -> pr " %10s" n) bars;
  pr "\n";
  let results =
    List.map
      (fun w ->
        let n = Workload.run_native w in
        if not n.Workload.ok then failwith (w.Workload.name ^ ": native failed");
        let row =
          List.map
            (fun (bname, mk) ->
              let r, _ = Workload.run_rio ~client:(mk ()) w in
              if not r.Workload.ok then
                failwith (Printf.sprintf "%s/%s: %s" w.Workload.name bname r.detail);
              if r.Workload.output <> n.Workload.output then
                failwith
                  (Printf.sprintf "%s/%s: OUTPUT MISMATCH" w.Workload.name bname);
              float_of_int r.cycles /. float_of_int n.cycles)
            bars
        in
        pr "%-9s %5s" w.Workload.name (if w.Workload.fp then "fp" else "int");
        List.iter (fun x -> pr " %10.3f" x) row;
        pr "\n%!";
        (w, row))
      Suite.all
  in
  let mean_of sel =
    let rows =
      List.filter_map (fun (w, row) -> if sel w then Some row else None) results
    in
    List.mapi (fun k _ -> geomean (List.map (fun r -> List.nth r k) rows)) bars
  in
  let print_mean name sel =
    pr "%-9s %5s" name "";
    List.iter (fun x -> pr " %10.3f" x) (mean_of sel);
    pr "\n"
  in
  print_mean "mean-int" (fun w -> not w.Workload.fp);
  print_mean "mean-fp" (fun w -> w.Workload.fp);
  print_mean "mean-all" (fun _ -> true);
  pr "(paper shape: rlr ~0.6 on mgrid and helps fp broadly; strength helps on\n";
  pr " the P4; ibdispatch helps branchy int; ctraces helps call-heavy; gcc and\n";
  pr " perlbmk slow down; combined mean ~= native, ~12%% better than base)\n%!"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                *)
(* ------------------------------------------------------------------ *)

let ratio_of ?(opts = Rio.Options.default) ?(client = Rio.Types.null_client) w =
  let n = Workload.run_native w in
  let r, rt = Workload.run_rio ~opts ~client w in
  if (not r.Workload.ok) || r.Workload.output <> n.Workload.output then
    failwith (w.Workload.name ^ ": ablation run diverged");
  (float_of_int r.cycles /. float_of_int n.cycles, rt)

let ablation () =
  pr "\n=== Ablations ===\n";

  pr "\n-- eflags liveness analysis (the Level-2 motivation, §3.1):\n";
  pr "   inline target checks save/restore flags only when live vs. always\n";
  pr "%-9s %12s %14s\n" "bench" "liveness" "always-save";
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      let live, _ = ratio_of w in
      let always, _ =
        ratio_of ~opts:{ Rio.Options.default with always_save_flags = true } w
      in
      pr "%-9s %12.3f %14.3f\n%!" name live always)
    [ "crafty"; "eon"; "gap"; "perlbmk"; "vortex" ];

  pr "\n-- trace-head threshold (hotness vs. responsiveness):\n";
  pr "%-9s" "bench";
  List.iter (fun t -> pr " %8d" t) [ 10; 25; 50; 100; 200 ];
  pr "\n";
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      pr "%-9s" name;
      List.iter
        (fun threshold ->
          let r, _ =
            ratio_of ~opts:{ Rio.Options.default with trace_threshold = threshold } w
          in
          pr " %8.3f" r)
        [ 10; 25; 50; 100; 200 ];
      pr "\n%!")
    [ "crafty"; "gzip"; "gcc"; "mgrid" ];

  pr "\n-- sideline optimization (§3.4: optimize on a spare processor):\n";
  pr "%-9s %10s %10s %16s\n" "bench" "inline" "sideline" "offloaded cycles";
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      let inline_r, _ = ratio_of ~client:(Clients.Compose.all_four ()) w in
      let side_r, rt =
        ratio_of
          ~opts:{ Rio.Options.default with sideline = true }
          ~client:(Clients.Compose.all_four ()) w
      in
      pr "%-9s %10.3f %10.3f %16d\n%!" name inline_r side_r
        (Rio.stats rt).Rio.Stats.sideline_cycles)
    [ "gcc"; "perlbmk"; "mgrid"; "vortex" ];

  pr "\n-- code-cache capacity (bytes; flush-the-world on overflow):\n";
  pr "%-9s" "bench";
  List.iter
    (fun c -> pr " %9s" (match c with None -> "unlimited" | Some b -> string_of_int b))
    [ None; Some 65536; Some 16384; Some 4096 ];
  pr "\n";
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      pr "%-9s" name;
      List.iter
        (fun cache_capacity ->
          let r, _ =
            ratio_of
              ~opts:
                { Rio.Options.default with
                  cache_capacity;
                  (* this table is specifically about the legacy
                     flush-the-world policy; the FIFO policy gets its
                     own `cachesweep` subcommand *)
                  flush_policy = Rio.Options.Flush_full;
                }
              w
          in
          pr " %9.3f" r)
        [ None; Some 65536; Some 16384; Some 4096 ];
      pr "\n%!")
    [ "gcc"; "crafty"; "vpr" ];

  pr "\n-- adaptive dispatch chain depth (max inlined targets per check):\n";
  pr "%-9s" "bench";
  List.iter (fun k -> pr " %8d" k) [ 0; 1; 2; 4; 8 ];
  pr "\n";
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      pr "%-9s" name;
      List.iter
        (fun max_inline ->
          let client =
            if max_inline = 0 then Rio.Types.null_client
            else
              Clients.Ibdispatch.make
                ~params:{ Clients.Ibdispatch.default_params with max_inline }
                ()
          in
          let r, _ = ratio_of ~client w in
          pr " %8.3f" r)
        [ 0; 1; 2; 4; 8 ];
      pr "\n%!")
    [ "eon"; "gap"; "crafty"; "perlbmk" ]

(* ------------------------------------------------------------------ *)
(* Trace profile: what the trace selector produces per workload       *)
(* ------------------------------------------------------------------ *)

let tracestats () =
  pr "\n=== Trace profile (base RIO, default thresholds) ===\n";
  pr "%-9s %7s %9s %9s %10s %11s %9s\n" "bench" "traces" "tr-bytes" "bb-bytes"
    "bb-enters" "trace-enters" "ibl-hits";
  List.iter
    (fun w ->
      let r, rt = Workload.run_rio w in
      if not r.Workload.ok then failwith (w.Workload.name ^ ": failed");
      let s = Rio.stats rt in
      pr "%-9s %7d %9d %9d %10d %11d %9d\n%!" w.Workload.name
        s.Rio.Stats.traces_built s.Rio.Stats.cache_bytes_trace
        s.Rio.Stats.cache_bytes_bb s.Rio.Stats.enters_bb
        s.Rio.Stats.enters_trace
        (s.Rio.Stats.ibl_lookups - s.Rio.Stats.ibl_misses))
    Suite.all;
  pr "(entries are fragment entries from the runtime — dispatch or\n";
  pr " indirect-branch lookup; linked control flow stays in the cache)\n%!"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the infrastructure                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  pr "\n=== Microbenchmarks (host wall time, Bechamel OLS ns/op) ===\n";
  let open Bechamel in
  let open Isa in
  let insn = Insn.mk_add (Operand.Reg Reg.Ebx) (Operand.mem_base ~disp:24 Reg.Ebp) in
  let raw = Encode.encode_exn ~pc:0x1000 insn in
  let fetch = Decode.fetch_bytes raw in
  let blocks = harvest_blocks () in
  let block, baddr = List.nth blocks (List.length blocks / 2) in
  let tests =
    [
      Test.make ~name:"encode one insn"
        (Staged.stage (fun () -> ignore (Encode.encode_exn ~pc:0x1000 insn)));
      Test.make ~name:"boundary scan one insn"
        (Staged.stage (fun () -> ignore (Decode.boundary_exn fetch 0)));
      Test.make ~name:"opcode+eflags decode"
        (Staged.stage (fun () -> ignore (Decode.opcode_eflags_exn fetch 0)));
      Test.make ~name:"full decode one insn"
        (Staged.stage (fun () -> ignore (Decode.full_exn fetch 0)));
      Test.make ~name:"level3 block pass"
        (Staged.stage (fun () ->
             ignore (encode_pass (level_pass 3 block baddr) ~addr:baddr)));
    ]
  in
  List.iter
    (fun t ->
      List.iter
        (fun elt -> pr "  %-24s %10.1f ns\n%!" (Test.Elt.name elt) (run_ols elt))
        (Test.elements t))
    tests

(* ------------------------------------------------------------------ *)
(* Fault sweep: the self-healing evaluation (DESIGN.md S34)           *)
(* ------------------------------------------------------------------ *)

let faultsweep () =
  pr "\n=== Fault sweep: self-healing cache under deterministic injection ===\n";
  let seeds = [ 1; 7; 42 ] in
  let wl = Suite.all in
  pr "(%d workloads x %d seeds, combined client, audit every dispatch)\n"
    (List.length wl) (List.length seeds);
  pr "%-9s %5s %8s %8s %7s %7s %7s %7s %7s %5s %6s\n" "bench" "runs" "injected"
    "detected" "reemit" "flfrag" "flworld" "emul" "hookfl" "quar" "output";
  let tot = Rio.Stats.create () in
  let add (s : Rio.Stats.t) =
    tot.Rio.Stats.faults_injected <-
      tot.Rio.Stats.faults_injected + s.Rio.Stats.faults_injected;
    tot.Rio.Stats.faults_detected <-
      tot.Rio.Stats.faults_detected + s.Rio.Stats.faults_detected;
    tot.Rio.Stats.recover_reemit <-
      tot.Rio.Stats.recover_reemit + s.Rio.Stats.recover_reemit;
    tot.Rio.Stats.recover_flush_frag <-
      tot.Rio.Stats.recover_flush_frag + s.Rio.Stats.recover_flush_frag;
    tot.Rio.Stats.recover_flush_world <-
      tot.Rio.Stats.recover_flush_world + s.Rio.Stats.recover_flush_world;
    tot.Rio.Stats.recover_emulate <-
      tot.Rio.Stats.recover_emulate + s.Rio.Stats.recover_emulate;
    tot.Rio.Stats.hook_failures <-
      tot.Rio.Stats.hook_failures + s.Rio.Stats.hook_failures;
    tot.Rio.Stats.clients_quarantined <-
      tot.Rio.Stats.clients_quarantined + s.Rio.Stats.clients_quarantined;
    tot.Rio.Stats.spurious_signals_dropped <-
      tot.Rio.Stats.spurious_signals_dropped + s.Rio.Stats.spurious_signals_dropped
  in
  let mismatches = ref 0 in
  List.iter
    (fun w ->
      let native = Workload.run_native w in
      let row = Rio.Stats.create () in
      let row_ok = ref 0 in
      List.iter
        (fun seed ->
          let opts =
            {
              Rio.Options.default with
              faults = Some { Rio.Options.default_faults with fi_seed = seed };
              audit_period = 1;
              max_cycles = max_int / 2;
            }
          in
          let r, rt = Workload.run_rio ~opts ~client:(Clients.Compose.all_four ()) w in
          if r.Workload.ok && r.Workload.output = native.Workload.output then
            incr row_ok
          else begin
            incr mismatches;
            pr "  !! %s seed %d: %s (output %s)\n" w.Workload.name seed r.detail
              (if r.Workload.output = native.Workload.output then "matches"
               else "DIFFERS")
          end;
          let s = Rio.stats rt in
          add s;
          row.Rio.Stats.faults_injected <-
            row.Rio.Stats.faults_injected + s.Rio.Stats.faults_injected;
          row.Rio.Stats.faults_detected <-
            row.Rio.Stats.faults_detected + s.Rio.Stats.faults_detected;
          row.Rio.Stats.recover_reemit <-
            row.Rio.Stats.recover_reemit + s.Rio.Stats.recover_reemit;
          row.Rio.Stats.recover_flush_frag <-
            row.Rio.Stats.recover_flush_frag + s.Rio.Stats.recover_flush_frag;
          row.Rio.Stats.recover_flush_world <-
            row.Rio.Stats.recover_flush_world + s.Rio.Stats.recover_flush_world;
          row.Rio.Stats.recover_emulate <-
            row.Rio.Stats.recover_emulate + s.Rio.Stats.recover_emulate;
          row.Rio.Stats.hook_failures <-
            row.Rio.Stats.hook_failures + s.Rio.Stats.hook_failures;
          row.Rio.Stats.clients_quarantined <-
            row.Rio.Stats.clients_quarantined + s.Rio.Stats.clients_quarantined)
        seeds;
      pr "%-9s %d/%d %8d %8d %7d %7d %7d %7d %7d %5d %6s\n%!" w.Workload.name
        !row_ok (List.length seeds) row.Rio.Stats.faults_injected
        row.Rio.Stats.faults_detected row.Rio.Stats.recover_reemit
        row.Rio.Stats.recover_flush_frag row.Rio.Stats.recover_flush_world
        row.Rio.Stats.recover_emulate row.Rio.Stats.hook_failures
        row.Rio.Stats.clients_quarantined
        (if !row_ok = List.length seeds then "ok" else "FAIL"))
    wl;
  pr "\nrecovery-rung histogram (all runs):\n";
  pr "  rung 0 re-emit fragment   %6d\n" tot.Rio.Stats.recover_reemit;
  pr "  rung 1 flush fragment     %6d\n" tot.Rio.Stats.recover_flush_frag;
  pr "  rung 2 flush the world    %6d\n" tot.Rio.Stats.recover_flush_world;
  pr "  rung 3 emulate only       %6d\n" tot.Rio.Stats.recover_emulate;
  pr "faults: %d injected, %d detected by audit; %d hook failures, %d clients quarantined, %d spurious signals dropped\n"
    tot.Rio.Stats.faults_injected tot.Rio.Stats.faults_detected
    tot.Rio.Stats.hook_failures tot.Rio.Stats.clients_quarantined
    tot.Rio.Stats.spurious_signals_dropped;
  (* audit overhead: same runs, auditing on vs. off, no injection *)
  pr "\naudit overhead (audit every dispatch vs. no audit, no faults):\n";
  pr "%-9s %12s %12s %8s\n" "bench" "plain" "audited" "ratio";
  let ratios =
    List.map
      (fun w ->
        let plain, _ = Workload.run_rio w in
        let audited, _ =
          Workload.run_rio ~opts:{ Rio.Options.default with audit_period = 1 } w
        in
        let ratio = float_of_int audited.cycles /. float_of_int plain.cycles in
        pr "%-9s %12d %12d %8.3f\n%!" w.Workload.name plain.cycles audited.cycles
          ratio;
        ratio)
      wl
  in
  pr "%-9s %12s %12s %8.3f (geomean)\n" "mean" "" "" (geomean ratios);
  if !mismatches = 0 then
    pr "\nall %d injected runs terminated with output identical to native\n%!"
      (List.length wl * List.length seeds)
  else pr "\n!! %d runs diverged\n%!" !mismatches

(* ------------------------------------------------------------------ *)
(* Throughput: simulated-MIPS per workload (host wall time)           *)
(* ------------------------------------------------------------------ *)

(* Unlike every artifact above, this one measures the {e host}: how
   many application instructions the runtime retires per host second
   (simulated MIPS).  Simulated cycle counts are the paper's metric and
   must never change from host-side optimization; this subcommand is
   the perf trajectory future PRs regress against. *)

let time_now = Sweep.time_now

type tp_row = {
  tp_name : string;
  tp_app_insns : int;     (* app instructions retired by one native run *)
  tp_runs : int;
  tp_host_s : float;
  tp_mips : float;
  tp_cycles : int;        (* simulated cycles of one RIO run (determinism check) *)
}

(* Measure one workload: repeat whole RIO runs (machine construction
   included — it is part of serving a request) until [target_s] of host
   time has elapsed, minimum [min_runs]. *)
let throughput_one ~target_s ~min_runs (w : Workload.t) : tp_row =
  let image = Asm.Assemble.assemble w.Workload.program in
  let run_once () =
    let m = Vm.Machine.create () in
    Vm.Machine.set_input m w.Workload.input;
    ignore (Asm.Image.load m image);
    let rt = Rio.create m in
    let o = Rio.run rt in
    if o.Rio.reason <> Rio.All_exited then
      failwith (w.Workload.name ^ ": throughput run did not complete");
    o.Rio.cycles
  in
  let native = Sweep.native_checked w in
  (* warm-up run, also records the simulated cycle count *)
  let cycles = run_once () in
  let t0 = time_now () in
  let runs = ref 0 in
  while !runs < min_runs || time_now () -. t0 < target_s do
    ignore (run_once ());
    incr runs
  done;
  let host_s = time_now () -. t0 in
  let mips =
    float_of_int (!runs * native.Workload.insns) /. host_s /. 1.0e6
  in
  {
    tp_name = w.Workload.name;
    tp_app_insns = native.Workload.insns;
    tp_runs = !runs;
    tp_host_s = host_s;
    tp_mips = mips;
    tp_cycles = cycles;
  }

let read_baseline = Sweep.read_baseline

let throughput ~quick ~baseline_path ~out_path () =
  let target_s = if quick then 0.25 else 1.0 in
  let min_runs = if quick then 2 else 4 in
  pr "\n=== Throughput: simulated MIPS per workload (host wall clock) ===\n";
  pr "(%s mode; >= %d runs or %.2fs per workload; default RIO options)\n"
    (if quick then "quick" else "full")
    min_runs target_s;
  let baseline = read_baseline baseline_path in
  if baseline = [] then
    pr "(no baseline at %s: speedups omitted)\n" baseline_path;
  pr "%-9s %12s %6s %9s %10s %10s %8s\n" "bench" "app-insns" "runs" "host-s"
    "MIPS" "base-MIPS" "speedup";
  let rows =
    List.map
      (fun w ->
        let r = throughput_one ~target_s ~min_runs w in
        let base = List.assoc_opt r.tp_name baseline in
        (match base with
         | Some b ->
             pr "%-9s %12d %6d %9.3f %10.3f %10.3f %8.2f\n%!" r.tp_name
               r.tp_app_insns r.tp_runs r.tp_host_s r.tp_mips b (r.tp_mips /. b)
         | None ->
             pr "%-9s %12d %6d %9.3f %10.3f %10s %8s\n%!" r.tp_name
               r.tp_app_insns r.tp_runs r.tp_host_s r.tp_mips "-" "-");
        (r, base))
      Suite.all
  in
  let gm = geomean (List.map (fun (r, _) -> r.tp_mips) rows) in
  let base_rows = List.filter_map (fun (_, b) -> b) rows in
  let base_gm = if base_rows = [] then None else Some (geomean base_rows) in
  let speedups =
    List.filter_map
      (fun (r, b) -> Option.map (fun b -> r.tp_mips /. b) b)
      rows
  in
  let gm_speedup = if speedups = [] then None else Some (geomean speedups) in
  pr "%-9s %12s %6s %9s %10.3f" "geomean" "" "" "" gm;
  (match (base_gm, gm_speedup) with
   | Some bg, Some s -> pr " %10.3f %8.2f\n" bg s
   | _ -> pr " %10s %8s\n" "-" "-");
  (* write the JSON datapoint *)
  let open Sweep in
  write_json ~path:out_path
    (Obj
       ([ ("schema", Str "rio-throughput-v1");
          ("quick", Bool quick);
          ("geomean_mips", Float gm) ]
       @ (match base_gm with
         | Some bg -> [ ("baseline_geomean_mips", Float bg) ]
         | None -> [])
       @ (match gm_speedup with
         | Some s -> [ ("geomean_speedup_vs_baseline", Float s) ]
         | None -> [])
       @ [
           ( "workloads",
             Arr
               (List.map
                  (fun (r, base) ->
                    Obj
                      ([ ("name", Str r.tp_name);
                         ("app_insns", Int r.tp_app_insns);
                         ("runs", Int r.tp_runs);
                         ("host_seconds", Float r.tp_host_s);
                         ("mips", Float r.tp_mips);
                         ("sim_cycles", Int r.tp_cycles) ]
                      @
                      match base with
                      | Some b ->
                          [ ("baseline_mips", Float b);
                            ("speedup", Float (r.tp_mips /. b)) ]
                      | None -> []))
                  rows) );
         ]))

(* ------------------------------------------------------------------ *)
(* Cache sweep: capacity ladder x flush policy                        *)
(* ------------------------------------------------------------------ *)

(* How do the two capacity policies degrade as the code cache shrinks
   from unbounded to tiny?  Simulated cycle ratios tell the paper-side
   story (eviction cost vs. flush-and-rebuild cost); host MIPS tracks
   what the allocator churn costs this implementation.  Every run's
   output is checked against native, and FIFO runs must never fall back
   to a full flush on these single-threaded workloads. *)

type cs_row = {
  cs_bench : string;
  cs_policy : string;               (* "fifo" | "full" | "unbounded" *)
  cs_cap : int option;
  cs_ratio : float;                 (* simulated cycles / native cycles *)
  cs_mips : float;                  (* host throughput of the one run *)
  cs_evictions : int;
  cs_flushes : int;
  cs_dropped : int;
  cs_fallbacks : int;
}

let cachesweep_one (w : Workload.t) ~policy_name ~policy ~cap : cs_row =
  let native = Workload.run_native w in
  if not native.Workload.ok then failwith (w.Workload.name ^ ": native failed");
  let opts =
    { Rio.Options.default with
      cache_capacity = cap;
      flush_policy = policy;
      max_cycles = max_int / 2;
    }
  in
  let t0 = time_now () in
  let r, rt = Workload.run_rio ~opts w in
  let host_s = time_now () -. t0 in
  if not r.Workload.ok then
    failwith
      (Printf.sprintf "cachesweep: %s @ %s/%s diverged: %s" w.Workload.name
         policy_name
         (match cap with None -> "unbounded" | Some c -> string_of_int c)
         r.Workload.detail);
  let s = Rio.stats rt in
  {
    cs_bench = w.Workload.name;
    cs_policy = policy_name;
    cs_cap = cap;
    cs_ratio = float_of_int r.Workload.cycles /. float_of_int native.Workload.cycles;
    cs_mips = float_of_int native.Workload.insns /. host_s /. 1.0e6;
    cs_evictions = s.Rio.Stats.evictions;
    cs_flushes = s.Rio.Stats.cache_flushes;
    cs_dropped = s.Rio.Stats.traces_dropped;
    cs_fallbacks = s.Rio.Stats.full_flush_fallbacks;
  }

let cachesweep ~quick ~out_path () =
  let ladder =
    if quick then [ Some 16384; Some 4096 ]
    else [ Some 65536; Some 32768; Some 16384; Some 8192; Some 4096 ]
  in
  let wl =
    if quick then
      List.filter_map Suite.by_name
        [ "gcc"; "crafty"; "eon"; "vpr"; "mgrid"; "gzip" ]
    else Suite.all
  in
  pr "\n=== Cache sweep: capacity ladder x flush policy (%s mode) ===\n"
    (if quick then "quick" else "full");
  pr "(%d workloads; every run's output checked against native)\n"
    (List.length wl);
  let configs =
    ("unbounded", Rio.Options.Flush_fifo, None)
    :: List.concat_map
         (fun cap ->
           [
             ("fifo", Rio.Options.Flush_fifo, cap);
             ("full", Rio.Options.Flush_full, cap);
           ])
         ladder
  in
  pr "%-9s %10s %14s %10s %10s %8s %8s %9s\n" "policy" "capacity" "geomean-ratio"
    "gm-MIPS" "evictions" "flushes" "dropped" "fallbacks";
  let rows =
    List.concat_map
      (fun (policy_name, policy, cap) ->
        let rs =
          List.map (fun w -> cachesweep_one w ~policy_name ~policy ~cap) wl
        in
        let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
        pr "%-9s %10s %14.3f %10.3f %10d %8d %8d %9d\n%!" policy_name
          (match cap with None -> "unbounded" | Some c -> string_of_int c)
          (geomean (List.map (fun r -> r.cs_ratio) rs))
          (geomean (List.map (fun r -> r.cs_mips) rs))
          (sum (fun r -> r.cs_evictions))
          (sum (fun r -> r.cs_flushes))
          (sum (fun r -> r.cs_dropped))
          (sum (fun r -> r.cs_fallbacks))
        ;
        rs)
      configs
  in
  let fifo_flushes =
    List.fold_left
      (fun a r -> if r.cs_policy = "fifo" then a + r.cs_flushes else a)
      0 rows
  in
  if fifo_flushes = 0 then
    pr "\nall outputs identical to native; FIFO rows ran with zero full flushes\n%!"
  else pr "\n!! FIFO rows fell back to %d full flushes\n%!" fifo_flushes;
  (* write the JSON datapoint *)
  let open Sweep in
  write_json ~path:out_path
    (Obj
       [ ("schema", Str "rio-cachesweep-v1");
         ("quick", Bool quick);
         ("fifo_full_flushes", Int fifo_flushes);
         ( "rows",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [ ("bench", Str r.cs_bench);
                      ("policy", Str r.cs_policy);
                      ( "capacity",
                        match r.cs_cap with None -> Null | Some c -> Int c );
                      ("cycle_ratio", Float r.cs_ratio);
                      ("mips", Float r.cs_mips);
                      ("evictions", Int r.cs_evictions);
                      ("cache_flushes", Int r.cs_flushes);
                      ("traces_dropped", Int r.cs_dropped);
                      ("full_flush_fallbacks", Int r.cs_fallbacks) ])
                rows) );
       ]);
  if fifo_flushes > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Opt sweep: the trace-optimizer evaluation (DESIGN.md §6.4)         *)
(* ------------------------------------------------------------------ *)

(* How much simulated time do the in-core -O passes recover?  Every
   run's output is checked against native (with and without fault
   injection); -O0 must reproduce the plain-RIO cycle counts exactly;
   and a bounded-FIFO configuration with a low re-optimization
   threshold must exercise the decode/replace path without ever falling
   back to a full flush. *)

type os_row = {
  os_bench : string;
  os_level : int;
  os_cycles : int;
  os_ratio : float;          (* simulated cycles / native cycles *)
  os_removed : int;          (* instructions removed by the optimizer *)
}

let optsweep_run (w : Workload.t) ~label ~opts : Workload.run_result * Rio.t =
  let native = Workload.run_native w in
  if not native.Workload.ok then failwith (w.Workload.name ^ ": native failed");
  let r, rt = Workload.run_rio ~opts w in
  if (not r.Workload.ok) || r.Workload.output <> native.Workload.output then
    failwith
      (Printf.sprintf "optsweep: %s @ %s diverged from native: %s"
         w.Workload.name label r.Workload.detail);
  (r, rt)

let optsweep ~quick ~bundle_path ~out_path () =
  let wl =
    if quick then
      List.filter_map Suite.by_name
        [ "gzip"; "gcc"; "crafty"; "perlbmk"; "swim"; "mgrid"; "art" ]
    else Suite.all
  in
  let levels = [ 0; 1; 2 ] in
  pr "\n=== Opt sweep: -O levels x workloads (%s mode) ===\n"
    (if quick then "quick" else "full");
  pr "(%d workloads; every run's output checked against native)\n"
    (List.length wl);
  pr "%-9s %5s" "bench" "";
  List.iter (fun l -> pr " %9s" (Printf.sprintf "-O%d" l)) levels;
  pr " %9s\n" "O2/O0";
  let rows = ref [] in
  let o0_by_bench = Hashtbl.create 32 in
  List.iter
    (fun w ->
      let native = Workload.run_native w in
      let per_level =
        List.map
          (fun level ->
            let opts =
              { Rio.Options.default with opt_level = level;
                max_cycles = max_int / 2 }
            in
            let r, rt =
              optsweep_run w ~label:(Printf.sprintf "-O%d" level) ~opts
            in
            let row =
              {
                os_bench = w.Workload.name;
                os_level = level;
                os_cycles = r.Workload.cycles;
                os_ratio =
                  float_of_int r.Workload.cycles
                  /. float_of_int native.Workload.cycles;
                os_removed = (Rio.stats rt).Rio.Stats.opt_insns_removed;
              }
            in
            if level = 0 then
              Hashtbl.replace o0_by_bench w.Workload.name r.Workload.cycles;
            rows := row :: !rows;
            row)
          levels
      in
      pr "%-9s %5s" w.Workload.name (if w.Workload.fp then "fp" else "int");
      List.iter (fun r -> pr " %9.3f" r.os_ratio) per_level;
      let o0 = (List.hd per_level).os_cycles
      and o2 = (List.nth per_level 2).os_cycles in
      pr " %9.3f\n%!" (float_of_int o2 /. float_of_int o0))
    wl;
  let rows = List.rev !rows in
  let level_rows l = List.filter (fun r -> r.os_level = l) rows in
  pr "%-9s %5s" "geomean" "";
  List.iter
    (fun l -> pr " %9.3f" (geomean (List.map (fun r -> r.os_ratio) (level_rows l))))
    levels;
  let o2_vs_o0 =
    geomean
      (List.map
         (fun (r : os_row) ->
           float_of_int r.os_cycles
           /. float_of_int (Hashtbl.find o0_by_bench r.os_bench))
         (level_rows 2))
  in
  pr " %9.3f\n" o2_vs_o0;
  let reduction_pct = (1.0 -. o2_vs_o0) *. 100.0 in
  pr "-O2 removes %.1f%% of simulated app cycles (geomean vs -O0)\n%!"
    reduction_pct;

  (* -O0 must reproduce the plain-RIO golden cycle counts exactly *)
  let o0_drift = ref 0 in
  List.iter
    (fun w ->
      let plain, _ =
        Workload.run_rio
          ~opts:{ Rio.Options.default with max_cycles = max_int / 2 } w
      in
      let o0 = Hashtbl.find o0_by_bench w.Workload.name in
      if plain.Workload.cycles <> o0 then begin
        incr o0_drift;
        pr "!! %s: -O0 cycles %d differ from plain RIO %d\n%!" w.Workload.name
          o0 plain.Workload.cycles
      end)
    wl;
  if !o0_drift = 0 then pr "-O0 cycle counts identical to plain RIO on every workload\n%!";

  (* the same levels under deterministic fault injection *)
  pr "\n-- fault-injection variants (seed %d, audit every dispatch):\n"
    Rio.Options.default_faults.Rio.Options.fi_seed;
  List.iter
    (fun level ->
      List.iter
        (fun w ->
          let opts =
            { Rio.Options.default with
              opt_level = level;
              faults = Some Rio.Options.default_faults;
              audit_period = 1;
              max_cycles = max_int / 2 }
          in
          ignore (optsweep_run w ~label:(Printf.sprintf "-O%d+faults" level) ~opts))
        wl;
      pr "   -O%d: all outputs identical to native under injection\n%!" level)
    levels;

  (* hot-trace re-optimization under a bounded FIFO cache *)
  pr "\n-- hot-trace re-optimization (bounded FIFO, --reopt 2):\n";
  let reopt_total = ref 0 and reopt_fallbacks = ref 0 and reopt_benches = ref 0 in
  List.iter
    (fun w ->
      let opts =
        { Rio.Options.default with
          opt_level = 2;
          reopt_threshold = Some 2;
          cache_capacity = Some (Rio.Options.min_cache_capacity Rio.Options.default * 3);
          flush_policy = Rio.Options.Flush_fifo;
          max_cycles = max_int / 2 }
      in
      let _, rt = optsweep_run w ~label:"-O2+reopt" ~opts in
      let s = Rio.stats rt in
      reopt_total := !reopt_total + s.Rio.Stats.traces_reoptimized;
      reopt_fallbacks := !reopt_fallbacks + s.Rio.Stats.full_flush_fallbacks;
      if s.Rio.Stats.traces_reoptimized > 0 then incr reopt_benches)
    wl;
  pr "   %d traces re-optimized in place across %d/%d workloads; %d full-flush fallbacks\n%!"
    !reopt_total !reopt_benches (List.length wl) !reopt_fallbacks;

  (* the autotuned bundle's per-bench levels must never be worse than
     that bundle's own -O0 projection — the guard against the gcc-style
     regression where a globally-good level hurts one workload.  This
     replays exactly the single-engine measurement the autotuner's
     override pass used as its hard constraint. *)
  let bundle_rows = ref [] in
  let bundle_viol = ref 0 in
  (match bundle_path with
   | None ->
       pr "\n-- no tuned bundle found (pass --bundle FILE); skipping the \
           never-worse-than--O0 check\n%!"
   | Some path -> (
       match Rio.Bundle.load path with
       | Error e ->
           pr "!! bundle %s failed to load: %s\n%!" path
             (Rio.Bundle.error_to_string e);
           exit 1
       | Ok b ->
           pr "\n-- tuned bundle %s (digest %08x): per-bench \
               never-worse-than--O0 check:\n"
             path (Rio.Bundle.digest b);
           List.iter
             (fun w ->
               let name = w.Workload.name in
               let tuned =
                 { (Rio.Bundle.opts_for b name) with
                   Rio.Options.max_cycles = max_int / 2 }
               in
               let b0 = { b with Rio.Bundle.b_overrides = [ (name, 0) ] } in
               let o0 =
                 { (Rio.Bundle.opts_for b0 name) with
                   Rio.Options.max_cycles = max_int / 2 }
               in
               let rt, _ =
                 optsweep_run w
                   ~label:(Printf.sprintf "bundle(-O%d)"
                             tuned.Rio.Options.opt_level)
                   ~opts:tuned
               in
               let r0, _ = optsweep_run w ~label:"bundle(-O0)" ~opts:o0 in
               let worse = rt.Workload.cycles > r0.Workload.cycles in
               if worse then incr bundle_viol;
               bundle_rows :=
                 (name, tuned.Rio.Options.opt_level, rt.Workload.cycles,
                  r0.Workload.cycles)
                 :: !bundle_rows;
               pr "   %-9s -O%d %9d vs -O0 %9d  %s\n%!" name
                 tuned.Rio.Options.opt_level rt.Workload.cycles
                 r0.Workload.cycles
                 (if worse then "!! WORSE" else "ok"))
             wl;
           if !bundle_viol = 0 then
             pr "   bundle level is never worse than -O0 on any bench\n%!"));
  let bundle_rows = List.rev !bundle_rows in

  (* write the JSON datapoint *)
  let open Sweep in
  write_json ~path:out_path
    (Obj
       [ ("schema", Str "rio-optsweep-v1");
         ("quick", Bool quick);
         ("o2_vs_o0_geomean_cycle_ratio", Float o2_vs_o0);
         ("o2_geomean_cycles_removed_pct", Float reduction_pct);
         ("o0_cycle_drift", Int !o0_drift);
         ("traces_reoptimized", Int !reopt_total);
         ("reopt_workloads", Int !reopt_benches);
         ("reopt_full_flush_fallbacks", Int !reopt_fallbacks);
         ("bundle_checked", Bool (bundle_path <> None));
         ("bundle_worse_than_o0", Int !bundle_viol);
         ( "bundle_rows",
           Arr
             (List.map
                (fun (bench, level, tuned, o0) ->
                  Obj
                    [ ("bench", Str bench);
                      ("level", Int level);
                      ("tuned_cycles", Int tuned);
                      ("o0_cycles", Int o0) ])
                bundle_rows) );
         ( "rows",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [ ("bench", Str r.os_bench);
                      ("level", Int r.os_level);
                      ("sim_cycles", Int r.os_cycles);
                      ("cycle_ratio", Float r.os_ratio);
                      ("insns_removed", Int r.os_removed) ])
                rows) );
       ]);
  (* hard gates: -O0 byte-identical; re-opt exercised with no full-flush
     fallback; no single bench >2% worse than its own -O0 row; and
     (full mode) the >=5% geomean win *)
  if !o0_drift > 0 then exit 1;
  if !reopt_total = 0 || !reopt_fallbacks > 0 then exit 1;
  let regressions = ref 0 in
  List.iter
    (fun (r : os_row) ->
      let o0 = Hashtbl.find o0_by_bench r.os_bench in
      if float_of_int r.os_cycles > 1.02 *. float_of_int o0 then begin
        incr regressions;
        pr "!! %s: -O%d cycles %d regress >2%% vs -O0 %d\n%!" r.os_bench
          r.os_level r.os_cycles o0
      end)
    rows;
  if !regressions > 0 then exit 1;
  if !bundle_viol > 0 then begin
    pr "!! tuned bundle picks a level worse than -O0 on %d bench(es)\n%!"
      !bundle_viol;
    exit 1
  end;
  if (not quick) && reduction_pct < 5.0 then begin
    pr "!! -O2 geomean reduction %.2f%% below the 5%% target\n%!" reduction_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Spec sweep: the speculative tier evaluation (DESIGN.md §6.7)       *)
(* ------------------------------------------------------------------ *)

(* What does -O3 speculation buy over -O2, and does the guard
   machinery ever hurt?  Every run's output is checked against native;
   the -O3 geomean must beat the -O2 tier's recorded 0.930; no single
   bench may regress more than 2% against its own -O0 row; and at
   least one workload must exercise the full lifecycle — speculate,
   violate, deoptimize, re-optimize. *)

type ss_row = {
  ss_bench : string;
  ss_level : int;
  ss_cycles : int;
  ss_ratio : float;           (* simulated cycles / native cycles *)
  ss_guards : int;            (* guards compiled (ind + const) *)
  ss_violations : int;
  ss_despecs : int;
  ss_biases : int;            (* profile-biased final exits *)
}

let specsweep ~quick ~out_path () =
  let wl =
    if quick then
      List.filter_map Suite.by_name
        [ "gzip"; "gcc"; "crafty"; "eon"; "perlbmk"; "mesa"; "art" ]
    else Suite.all
  in
  let levels = [ 0; 2; 3 ] in
  pr "\n=== Spec sweep: speculative optimization (-O3) x workloads (%s mode) ===\n"
    (if quick then "quick" else "full");
  pr "(%d workloads; every run's output checked against native)\n"
    (List.length wl);
  pr "%-9s %5s" "bench" "";
  List.iter (fun l -> pr " %9s" (Printf.sprintf "-O%d" l)) levels;
  pr " %7s %6s %6s %6s\n" "O3/O0" "guards" "viols" "despec";
  let rows = ref [] in
  let o0_by_bench = Hashtbl.create 32 in
  List.iter
    (fun w ->
      let native = Workload.run_native w in
      let per_level =
        List.map
          (fun level ->
            let opts =
              { Rio.Options.default with opt_level = level;
                max_cycles = max_int / 2 }
            in
            let r, rt =
              optsweep_run w ~label:(Printf.sprintf "-O%d" level) ~opts
            in
            let s = Rio.stats rt in
            let row =
              {
                ss_bench = w.Workload.name;
                ss_level = level;
                ss_cycles = r.Workload.cycles;
                ss_ratio =
                  float_of_int r.Workload.cycles
                  /. float_of_int native.Workload.cycles;
                ss_guards =
                  s.Rio.Stats.spec_guards_ind + s.Rio.Stats.spec_guards_const;
                ss_violations = s.Rio.Stats.spec_violations;
                ss_despecs = s.Rio.Stats.spec_despecs;
                ss_biases = s.Rio.Stats.spec_exit_biases;
              }
            in
            if level = 0 then
              Hashtbl.replace o0_by_bench w.Workload.name r.Workload.cycles;
            rows := row :: !rows;
            row)
          levels
      in
      let o3 = List.nth per_level 2 in
      pr "%-9s %5s" w.Workload.name (if w.Workload.fp then "fp" else "int");
      List.iter (fun r -> pr " %9.3f" r.ss_ratio) per_level;
      pr " %7.3f %6d %6d %6d\n%!"
        (float_of_int o3.ss_cycles
        /. float_of_int (List.hd per_level).ss_cycles)
        o3.ss_guards o3.ss_violations o3.ss_despecs)
    wl;
  let rows = List.rev !rows in
  let level_rows l = List.filter (fun r -> r.ss_level = l) rows in
  let vs_o0 l =
    geomean
      (List.map
         (fun (r : ss_row) ->
           float_of_int r.ss_cycles
           /. float_of_int (Hashtbl.find o0_by_bench r.ss_bench))
         (level_rows l))
  in
  pr "%-9s %5s" "geomean" "";
  List.iter
    (fun l ->
      pr " %9.3f" (geomean (List.map (fun r -> r.ss_ratio) (level_rows l))))
    levels;
  let o2_vs_o0 = vs_o0 2 and o3_vs_o0 = vs_o0 3 in
  pr " %7.3f\n" o3_vs_o0;
  pr "-O3 vs -O0 geomean %.4f (tier target: beat -O2's recorded 0.930)\n%!"
    o3_vs_o0;
  (* the lifecycle witness: a bench whose -O3 run speculated, took
     guard violations, deoptimized, and re-speculated after the deopt
     (more guards compiled than assumptions retired) *)
  let lifecycle =
    List.find_opt
      (fun r ->
        r.ss_despecs >= 1 && r.ss_violations >= r.ss_despecs
        && r.ss_guards > r.ss_despecs)
      (level_rows 3)
  in
  (match lifecycle with
   | Some r ->
       pr "lifecycle witness: %s (%d guards, %d violations, %d despecs)\n%!"
         r.ss_bench r.ss_guards r.ss_violations r.ss_despecs
   | None -> pr "!! no workload exercised the full speculation lifecycle\n%!");
  (* per-bench 2%% gate against -O0 *)
  let regressions = ref 0 in
  List.iter
    (fun (r : ss_row) ->
      let o0 = Hashtbl.find o0_by_bench r.ss_bench in
      if float_of_int r.ss_cycles > 1.02 *. float_of_int o0 then begin
        incr regressions;
        pr "!! %s: -O%d cycles %d regress >2%% vs -O0 %d\n%!" r.ss_bench
          r.ss_level r.ss_cycles o0
      end)
    rows;
  if !regressions = 0 then
    pr "no bench regresses >2%% against its -O0 row at any level\n%!";
  (* write the JSON datapoint *)
  let open Sweep in
  write_json ~path:out_path
    (Obj
       [ ("schema", Str "rio-specsweep-v1");
         ("quick", Bool quick);
         ("o3_vs_o0_geomean_cycle_ratio", Float o3_vs_o0);
         ("o2_vs_o0_geomean_cycle_ratio", Float o2_vs_o0);
         ( "lifecycle_bench",
           match lifecycle with Some r -> Str r.ss_bench | None -> Str "" );
         ( "rows",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [ ("bench", Str r.ss_bench);
                      ("level", Int r.ss_level);
                      ("sim_cycles", Int r.ss_cycles);
                      ("cycle_ratio", Float r.ss_ratio);
                      ("guards", Int r.ss_guards);
                      ("violations", Int r.ss_violations);
                      ("despecs", Int r.ss_despecs);
                      ("exit_biases", Int r.ss_biases) ])
                rows) );
       ]);
  (* hard gates *)
  if !regressions > 0 then exit 1;
  if lifecycle = None then exit 1;
  if (not quick) && o3_vs_o0 >= 0.930 then begin
    pr "!! -O3 geomean %.4f does not beat the -O2 tier's 0.930\n%!" o3_vs_o0;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table1x ();
  table2 ();
  figure1 ();
  figure2 ();
  figure4 ();
  figure5 ();
  ablation ();
  tracestats ();
  faultsweep ();
  micro ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] | [] -> all ()
  | _ :: "throughput" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"throughput" ~string_opts:[ "--baseline" ]
          ~default_out:"BENCH_throughput.json" rest
      in
      let baseline_path =
        Option.value
          (List.assoc_opt "--baseline" cli.Sweep.extra)
          ~default:"bench/BASELINE_throughput.txt"
      in
      throughput ~quick:cli.Sweep.quick ~baseline_path
        ~out_path:cli.Sweep.out_path ()
  | _ :: "optsweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"optsweep" ~string_opts:[ "--bundle" ]
          ~default_out:"BENCH_opt.json" rest
      in
      let bundle_path =
        match List.assoc_opt "--bundle" cli.Sweep.extra with
        | Some p -> Some p (* explicit: a load failure is then fatal *)
        | None -> if Sys.file_exists "bundle.json" then Some "bundle.json"
                  else None
      in
      optsweep ~quick:cli.Sweep.quick ~bundle_path ~out_path:cli.Sweep.out_path
        ()
  | _ :: "specsweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"specsweep" ~default_out:"BENCH_spec.json" rest
      in
      specsweep ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "cachesweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"cachesweep" ~default_out:"BENCH_cache.json" rest
      in
      cachesweep ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "parsweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"parsweep" ~default_out:"BENCH_parallel.json" rest
      in
      Parsweep.run ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "servesweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"servesweep" ~default_out:"BENCH_serve.json" rest
      in
      Servesweep.run ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "chaossweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"chaossweep" ~default_out:"BENCH_chaos.json" rest
      in
      Chaossweep.run ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "persistsweep" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"persistsweep" ~default_out:"BENCH_persist.json"
          rest
      in
      Persistsweep.run ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path ()
  | _ :: "autotune" :: rest ->
      let cli =
        Sweep.parse_cli ~cmd:"autotune" ~string_opts:[ "--bundle-out" ]
          ~default_out:"BENCH_autotune.json" rest
      in
      let bundle_out =
        Option.value
          (List.assoc_opt "--bundle-out" cli.Sweep.extra)
          ~default:"bundle.json"
      in
      Autotune.run ~quick:cli.Sweep.quick ~out_path:cli.Sweep.out_path
        ~bundle_out ()
  | _ :: args ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table1x" -> table1x ()
          | "table2" -> table2 ()
          | "figure1" -> figure1 ()
          | "figure2" -> figure2 ()
          | "figure4" -> figure4 ()
          | "figure5" -> figure5 ()
          | "ablation" -> ablation ()
          | "tracestats" -> tracestats ()
          | "faultsweep" -> faultsweep ()
          | "micro" -> micro ()
          | "all" -> all ()
          | "--help" | "-h" ->
              print_endline
                "usage: main.exe [table1|table1x|table2|figure1|figure2|figure4|figure5|ablation|tracestats|faultsweep|micro|throughput [--quick] [--baseline f] [--out f]|cachesweep [--quick] [--out f]|optsweep [--quick] [--out f]|specsweep [--quick] [--out f]|parsweep [--quick] [--out f]|servesweep [--quick] [--out f]|chaossweep [--quick] [--out f]|persistsweep [--quick] [--out f]|autotune [--quick] [--out f] [--bundle-out f]|all]"
          | a -> Printf.eprintf "unknown artifact %S\n" a)
        args
