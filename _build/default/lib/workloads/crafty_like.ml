(** crafty-like: chess-engine integer code (SPEC2000 186.crafty).

    Character: bitboard-style integer arithmetic (shifts, masks,
    population-count loops), dense conditional branching, and — the
    property that matters most under a code cache — frequent {e
    indirect} control flow: a move-generator dispatched through a
    function-pointer table and deep call/return chains.  This gives
    crafty the paper's highest indirect-branch overhead (Table 1:
    2.0× with in-cache lookup; traces bring it to 1.7×). *)

open Asm.Dsl

let positions = 2600

let text =
  [
    label "main";
    mov ebp esp;
    mov esi (i 0);                    (* position counter *)
    mov edi (i 0x9E3779B9);           (* "board" state *)
    label "position";
    (* pick a piece kind from the state, dispatch its generator *)
    mov eax edi;
    shr eax (i 5);
    and_ eax (i 3);                   (* 4 generators *)
    li ebx "gen_table";
    mov eax (m ~base:ebx ~index:(eax, 4) ());
    call_ind eax;
    (* evaluate: popcount-ish loop over the low byte of the mask *)
    and_ eax (i 0xFF);
    mov ecx (i 0);
    label "popcnt";
    test eax eax;
    j z "popdone";
    mov edx eax;
    and_ edx (i 1);
    add ecx edx;
    shr eax (i 1);
    jmp "popcnt";
    label "popdone";
    (* update board state with branches (alpha-beta flavoured) *)
    add edi ecx;
    mov eax edi;
    and_ eax (i 7);
    cmp eax (i 3);
    j le "quiet";
    xor edi (i 0x55AA55);
    cmp ecx (i 10);
    j l "shallow";
    add edi (i 0x1234);
    jmp "next";
    label "shallow";
    sub edi (i 0x777);
    jmp "next";
    label "quiet";
    shl edi (i 1);
    or_ edi (i 1);
    label "next";
    inc esi;
    cmp esi (i positions);
    j l "position";
    out edi;
    hlt;
    (* --- move generators: small leaf functions returning a mask --- *)
    label "gen_pawn";
    mov eax edi;
    shl eax (i 3);
    xor eax (i 0x0F0F0F0F);
    ret;
    label "gen_knight";
    mov eax edi;
    shr eax (i 2);
    and_ eax (i 0x00FF00FF);
    xor eax edi;
    ret;
    label "gen_bishop";
    mov eax edi;
    imul eax (i 31);
    shr eax (i 4);
    ret;
    label "gen_rook";
    mov eax edi;
    not_ eax;
    and_ eax (i 0x3333CCCC);
    ret;
  ]

let data = [ label "gen_table"; word32_lbl [ "gen_pawn"; "gen_knight"; "gen_bishop"; "gen_rook" ] ]

let workload =
  Workload.make ~name:"crafty" ~spec_name:"186.crafty" ~fp:false
    ~description:
      "bitboard integer ops with indirect function-pointer dispatch and \
       popcount loops (indirect-branch stressor)"
    (program ~name:"crafty" ~entry:"main" ~text ~data ())
