lib/isa/disasm.ml: Array Buffer Bytes Char Decode Fmt Insn List Opcode Operand Printf String
