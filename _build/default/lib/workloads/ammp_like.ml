(** ammp-like: molecular dynamics with neighbor lists (SPEC2000
    188.ammp).

    Character: FP force computations gathered through integer neighbor
    indices — a blend of mcf's dependent loads and the FP stencils, with
    a division in the inner loop (non-pipelined, expensive) and a
    spilled cutoff constant reloaded per neighbor. *)

open Asm.Dsl

let atoms = 200
let neighbors = 8
let steps = 18

let cutoff = mb ebp ~disp:(-8)

let text =
  [
    label "main";
    mov ebp esp;
    sub esp (i 16);
    li ebx "consts";
    fld f0 (mb ebx);
    fst_ cutoff f0;
    mov edx (i 0);
    label "step";
    mov edi (i 0);                      (* atom index *)
    label "atom";
    fld f1 (mb ebx ~disp:8);            (* force accumulator = 0.0 *)
    mov esi (i 0);                      (* neighbor slot *)
    label "neigh";
    (* j = neighbor_index[atom*neighbors + slot] *)
    mov eax edi;
    imul eax (i neighbors);
    add eax esi;
    li ecx "nbr";
    mov ecx (m ~base:ecx ~index:(eax, 4) ());
    (* r = |pos[i] - pos[j]|, force += cutoff / (r + 1) *)
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "pos") ()));
    ins (fun env ->
        Isa.Insn.mk_fsub f2
          (Isa.Operand.mem ~index:(Isa.Reg.Ecx, 8) ~disp:(env "pos") ()));
    fabs f2;
    ins (fun env -> Isa.Insn.mk_fadd f2 (Isa.Operand.mem_abs (env "one")));
    fld f3 cutoff;                      (* spilled cutoff reload *)
    fdiv f3 (fr f2);
    fadd f1 (fr f3);
    inc esi;
    cmp esi (i neighbors);
    j l "neigh";
    (* integrate: v[i] = v[i]*0.25 + force *)
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "vel") ()));
    ins (fun env -> Isa.Insn.mk_fmul f2 (Isa.Operand.mem_abs (env "damp")));
    fadd f2 (fr f1);
    ins (fun env ->
        Isa.Insn.mk_fst
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "vel") ())
          f2);
    inc edi;
    cmp edi (i atoms);
    j l "atom";
    inc edx;
    cmp edx (i steps);
    j l "step";
    (* checksum *)
    mov edi (i 0);
    mov ecx (i 0);
    label "sum";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "vel") ()));
    cvtfi eax f0;
    add ecx eax;
    add edi (i 17);
    cmp edi (i atoms);
    j l "sum";
    out ecx;
    hlt;
  ]

let data =
  [
    label "consts";
    float64 [ 2.5; 0.0 ];
    label "one";
    float64 [ 1.0 ];
    label "damp";
    float64 [ 0.25 ];
    label "nbr";
    word32 (Workload.lcg_mod ~seed:83 (atoms * neighbors) atoms);
    label "pos";
    float64 (Workload.lcg_floats ~seed:87 atoms);
    label "vel";
    float64 (List.init atoms (fun _ -> 0.0));
  ]

let workload =
  Workload.make ~name:"ammp" ~spec_name:"188.ammp" ~fp:true
    ~description:
      "neighbor-list force loops: index gathers, a divide per interaction, \
       spilled-constant reloads"
    (program ~name:"ammp" ~entry:"main" ~text ~data ())
