(** The paper's Figure 3 client, written out in full against the public
    API: inc→add / dec→sub strength reduction, enabled only when the
    processor is a Pentium 4.

    {v dune exec examples/strength_reduction.exe v}

    Runs the bzip2-like workload (inc/dec-dense) on both simulated
    processor families and prints the speedup: the transformation helps
    on the P4 and stays disabled on the P3. *)

open Isa
open Rio.Types

(* --- the client, transliterated from Figure 3 --- *)

let enable = ref false
let num_examined = ref 0
let num_converted = ref 0

(* static bool inc2add(...) — walk forward checking CF effects *)
let inc2add (trace : Rio.Instrlist.t) (instr : Rio.Instr.t) : bool =
  let rec check in_ =
    match in_ with
    | None -> false
    | Some i ->
        let eflags = Rio.Instr.get_eflags i in
        if Eflags.reads_flag eflags Eflags.CF then false
          (* add writes CF, inc does not: a later CF read blocks us *)
        else if Eflags.writes_flag eflags Eflags.CF then true
          (* if it writes but doesn't read, we can replace *)
        else if Rio.Instr.is_cti i then false
          (* simplification: stop at first exit *)
        else check i.Rio.Instr.next
  in
  if not (check instr.Rio.Instr.next) then false
  else begin
    let opcode = Rio.Instr.get_opcode instr in
    let dst = Rio.Instr.get_dst instr 0 in
    let in_ =
      if opcode = Opcode.Inc then
        Rio.Create.add dst (Rio.Create.opnd_int8 1)
      else Rio.Create.sub dst (Rio.Create.opnd_int8 1)
    in
    Rio.Instr.set_prefixes in_ (Rio.Instr.get_prefixes instr);
    Rio.Instrlist.replace trace instr in_;
    true
  end

(* EXPORT void dynamorio_trace(...) *)
let dynamorio_trace _ctx ~tag:_ (trace : Rio.Instrlist.t) =
  if !enable then begin
    Rio.Instrlist.split_bundles trace;
    let rec walk instr =
      match instr with
      | None -> ()
      | Some i ->
          let next_instr = i.Rio.Instr.next in
          let opcode = Rio.Instr.get_opcode i in
          if opcode = Opcode.Inc || opcode = Opcode.Dec then begin
            incr num_examined;
            if inc2add trace i then incr num_converted
          end;
          walk next_instr
    in
    walk (Rio.Instrlist.first trace)
  end

let client =
  {
    null_client with
    name = "inc2add";
    (* EXPORT void dynamorio_init() *)
    init =
      (fun rt ->
        enable := Rio.Api.proc_get_family rt = Vm.Cost.Pentium4;
        num_examined := 0;
        num_converted := 0);
    (* EXPORT void dynamorio_exit() *)
    exit_hook =
      (fun rt ->
        if !enable then
          Rio.Api.printf rt "converted %d out of %d\n" !num_converted !num_examined
        else Rio.Api.printf rt "kept original inc/dec\n");
    trace_hook = Some dynamorio_trace;
  }

(* --- drive it on both processor families --- *)

let () =
  let w = Option.get (Workloads.Suite.by_name "bzip2") in
  List.iter
    (fun family ->
      Printf.printf "--- %s ---\n" (Vm.Cost.family_name family);
      let native = Workloads.Workload.run_native ~family w in
      let base, _ = Workloads.Workload.run_rio ~family w in
      let opt, rt = Workloads.Workload.run_rio ~family ~client w in
      assert (opt.output = native.output);
      Printf.printf "  native:          %9d cycles\n" native.cycles;
      Printf.printf "  base RIO:        %9d cycles (%.3fx)\n" base.cycles
        (float_of_int base.cycles /. float_of_int native.cycles);
      Printf.printf "  with inc2add:    %9d cycles (%.3fx)\n" opt.cycles
        (float_of_int opt.cycles /. float_of_int native.cycles);
      Printf.printf "  client says:     %s" (Rio.Api.client_output rt))
    [ Vm.Cost.Pentium4; Vm.Cost.Pentium3 ]
