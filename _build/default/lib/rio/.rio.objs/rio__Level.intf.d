lib/rio/level.mli: Format
