(** SynISA disassembler: textual rendering of decoded instructions and
    raw byte ranges, used by examples, debugging, and the Figure-2/4
    reproductions. *)

val insn_to_string : Insn.t -> string
val pp_insn : Format.formatter -> Insn.t -> unit

val hex_bytes : Bytes.t -> string
(** Space-separated lowercase hex. *)

val region : Decode.fetch -> pc:int -> len:int -> string list
(** One line per instruction: address, raw bytes, mnemonic.  Stops at
    the first decode error, appending an error line. *)
