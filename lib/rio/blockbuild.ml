(** Basic-block building (Figure 1's "basic block builder", split out
    of the dispatcher): decode the application code at a tag, run the
    client's [basic_block] hook, mangle, seal, and emit a bb fragment. *)

open Isa
open Types
module FI = Fragindex

(* Decode the application code starting at [tag] — all instructions up
   to and including the first CTI (or up to the size cap) — and build
   the client-view IL in the same forward pass.  Without a client hook,
   non-CTI instructions are kept as a single Level-0 bundle and only
   the final CTI is decoded (the paper's two-Instr fast path); with a
   hook, instructions are split to Level 1 so the client can walk them.
   Returns the IL, the instruction count, and the address just past the
   block. *)
let scan_and_build (rt : runtime) tag : Instrlist.t * int * int =
  let mem = Vm.Machine.mem rt.machine in
  let fetch = Vm.Memory.fetch mem in
  let max_insns = rt.opts.Options.max_bb_insns in
  let with_hook = rt.client.basic_block <> None && not rt.client_quarantined in
  let il = Instrlist.create () in
  let grab addr len = Vm.Memory.read_bytes mem ~addr ~len in
  let rec go addr n ~body_start =
    match Decode.opcode_eflags fetch addr with
    | Error e ->
        rio_error "bad application code at 0x%x: %s" addr
          (Decode.error_to_string e)
    | Ok (op, len) ->
        if Opcode.is_cti op then begin
          if (not with_hook) && addr > body_start then
            Instrlist.append il
              (Instr.of_bundle ~addr:body_start (grab body_start (addr - body_start)));
          let raw = grab addr len in
          (* decode against the true address so pc-relative targets resolve *)
          let f a = Char.code (Bytes.get raw (a - addr)) in
          (match Decode.full f addr with
           | Error e ->
               rio_error "bad CTI at 0x%x: %s" addr (Decode.error_to_string e)
           | Ok (insn, _) -> Instrlist.append il (Instr.of_decoded ~addr ~raw insn));
          (il, n + 1, addr + len)
        end
        else begin
          if with_hook then Instrlist.append il (Instr.of_raw ~addr (grab addr len));
          if n + 1 >= max_insns then begin
            if not with_hook then
              Instrlist.append il
                (Instr.of_bundle ~addr:body_start
                   (grab body_start (addr + len - body_start)));
            (il, n + 1, addr + len)
          end
          else go (addr + len) (n + 1) ~body_start
        end
  in
  go tag 0 ~body_start:tag

(* After mangling, guarantee the block's IL ends by leaving the
   fragment: a trailing conditional branch gets an explicit jmp to its
   fall-through; a capped block gets a jmp to the next instruction. *)
let seal_il (il : Instrlist.t) ~(fallthrough : int) : unit =
  match Instrlist.last il with
  | None -> rio_error "empty block"
  | Some last when Instr.is_bundle last ->
      (* capped block kept as one bundle: bundles never end in a CTI *)
      Instrlist.append il (Create.jmp fallthrough)
  | Some last -> (
      match Instr.get_opcode last with
      | Opcode.Jcc _ -> Instrlist.append il (Create.jmp fallthrough)
      | Opcode.Jmp | Opcode.Hlt -> ()
      | _ -> Instrlist.append il (Create.jmp fallthrough))

let build_bb (rt : runtime) (ts : thread_state) tag : fragment =
  let il, n_insns, block_end = scan_and_build rt tag in
  (* watch the source code so writes to it trigger fragment flushes *)
  Vm.Memory.watch_code (Vm.Machine.mem rt.machine) ~addr:tag ~len:(block_end - tag);
  charge rt
    (rt.opts.Options.costs.Options.bb_build_base
    + (n_insns * rt.opts.Options.costs.Options.bb_build_per_insn));
  let il =
    match rt.client.basic_block with
    | Some hook ->
        Guard.protect_il rt ~hook:"basic_block" il (fun il ->
            hook { rt; ts } ~tag il)
    | None -> il
  in
  Mangle.mangle_il ~tid:ts.ts_tid il;
  seal_il il ~fallthrough:block_end;
  let frag =
    Emit.emit_fragment rt ts ~kind:Bb ~tag ~src_ranges:[ (tag, block_end) ] il
  in
  rt.stats.Stats.blocks_built <- rt.stats.Stats.blocks_built + 1;
  if not (FI.is_head ts.index tag) then FI.set_ibl ts.index tag frag;
  log_flow rt "build bb 0x%x" tag;
  frag
