lib/rio/flags_analysis.mli: Instr
