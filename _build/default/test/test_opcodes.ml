(** Systematic per-opcode coverage: every SynISA opcode executes at
    least once through the full pipeline — DSL → assembler → image →
    interpreter — natively AND out of the code cache, with identical
    results.  Table-driven: each case is a tiny program plus its
    expected output. *)

open Asm.Dsl

let check_ilist = Alcotest.(check (list int))
let checkb = Alcotest.(check bool)

let run_both name prog expected =
  let image = Asm.Assemble.assemble prog in
  let native =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    let o = Vm.Sched.run ~emulate:false m in
    checkb (name ^ " native halts") true (o.Vm.Sched.stop = Vm.Interp.Halted);
    Vm.Machine.output m
  in
  check_ilist (name ^ " native result") expected native;
  let cached =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    let rt = Rio.create m in
    let o = Rio.run rt in
    checkb (name ^ " cached halts") true (o.Rio.reason = Rio.All_exited);
    Vm.Machine.output m
  in
  check_ilist (name ^ " cached result") expected cached

let u32 n = n land 0xFFFFFFFF

(* one case: body instrs leave the result in eax, we out it *)
let case name ?data body expected =
  ( name,
    fun () ->
      run_both name
        (program ~name ~entry:"main"
           ~text:(label "main" :: (body @ [ out eax; hlt ]))
           ?data ())
        [ expected ] )

(* a case outputting several values explicitly *)
let case_multi name ?data text expected =
  (name, fun () -> run_both name (program ~name ~entry:"main" ~text ?data ()) expected)

let integer_cases =
  [
    case "mov r,imm" [ mov eax (i 7) ] 7;
    case "mov r,r" [ mov ecx (i 9); mov eax ecx ] 9;
    case "mov r,m / m,r"
      ~data:[ label "w"; word32 [ 0 ] ]
      [ mov ecx (i 13); st "w" ecx; ld eax "w" ]
      13;
    case "movzx8"
      ~data:[ label "b"; word32 [ 0x1234ABCD ] ]
      [ li ebx "b"; movzx8 eax (mb ebx) ]
      0xCD;
    case "movzx16"
      ~data:[ label "b"; word32 [ 0x1234ABCD ] ]
      [ li ebx "b"; movzx16 eax (mb ebx) ]
      0xABCD;
    case "movzx8 from reg" [ mov ecx (i 0x1FF); movzx8 eax ecx ] 0xFF;
    case "lea scale"
      [ mov ebx (i 100); mov ecx (i 7); lea eax (m ~base:ebx ~index:(ecx, 8) ~disp:3 ()) ]
      (100 + 56 + 3);
    case "push/pop reg" [ mov ecx (i 21); push ecx; pop eax ] 21;
    case "push imm" [ push (i 77); pop eax ] 77;
    case "push/pop mem"
      ~data:[ label "w"; word32 [ 55 ] ]
      [ ins (fun env -> Isa.Insn.mk_push (Isa.Operand.mem_abs (env "w")));
        pop eax ]
      55;
    case "xchg r,r" [ mov eax (i 1); mov ecx (i 2); xchg eax ecx; sub eax (i 0) ] 2;
    case "xchg r,m"
      ~data:[ label "w"; word32 [ 30 ] ]
      [ mov eax (i 4); ins (fun env -> Isa.Insn.mk_xchg (Asm.Dsl.eax) (Isa.Operand.mem_abs (env "w"))) ]
      30;
    case "add" [ mov eax (i 40); add eax (i 2) ] 42;
    case "add r,m"
      ~data:[ label "w"; word32 [ 5 ] ]
      [ mov eax (i 1); ins (fun env -> Isa.Insn.mk_add Asm.Dsl.eax (Isa.Operand.mem_abs (env "w"))) ]
      6;
    case "adc carries"
      [ mov eax (i (-1)); add eax (i 1); mov eax (i 5); adc eax (i 0) ]
      6;
    case "sub" [ mov eax (i 10); sub eax (i 3) ] 7;
    case "sbb borrows"
      [ mov ecx (i 0); sub ecx (i 1); mov eax (i 10); sbb eax (i 0) ]
      9;
    case "inc/dec" [ mov eax (i 5); inc eax; inc eax; dec eax ] 6;
    case "neg" [ mov eax (i 3); neg eax ] (u32 (-3));
    case "not" [ mov eax (i 0); not_ eax ] 0xFFFFFFFF;
    case "and" [ mov eax (i 0xF0F); and_ eax (i 0x0FF) ] 0x00F;
    case "or" [ mov eax (i 0xF00); or_ eax (i 0x00F) ] 0xF0F;
    case "xor" [ mov eax (i 0xFF); xor eax (i 0x0F) ] 0xF0;
    case "test sets flags"
      [ mov eax (i 0); mov ecx (i 6); test ecx (i 1);
        j z "zero"; mov eax (i 1); label "zero"; add eax (i 0) ]
      0;
    case "cmp unsigned"
      [ mov eax (i 0); mov ecx (i (-1)); cmp ecx (i 1);
        j nbe "above"; jmp "done"; label "above"; mov eax (i 1); label "done";
        add eax (i 0) ]
      1;
    case "imul r,r" [ mov eax (i 6); mov ecx (i 7); imul eax ecx ] 42;
    case "imul r,imm" [ mov eax (i (-6)); imul eax (i 7) ] (u32 (-42));
    case "idiv" [ mov eax (i 43); mov ecx (i 5); idiv ecx; add eax edx ]
      (8 + 3);
    case "shl" [ mov eax (i 3); shl eax (i 4) ] 48;
    case "shr" [ mov eax (i (-1)); shr eax (i 24) ] 0xFF;
    case "sar" [ mov eax (i (-16)); sar eax (i 2) ] (u32 (-4));
    case "shift by cl" [ mov eax (i 1); mov ecx (i 5); shl eax ecx ] 32;
    case "lock prefix executes"
      [ ins (fun _ ->
            { (Isa.Insn.mk_add Asm.Dsl.eax (Isa.Operand.Imm 9)) with
              Isa.Insn.prefixes = Isa.Insn.prefix_lock });
      ]
      9;
  ]

let control_cases =
  [
    case_multi "jmp skips" [ label "main"; mov eax (i 1); jmp "over";
                             mov eax (i 2); label "over"; out eax; hlt ] [ 1 ];
    case_multi "all sixteen conditions"
      ([ label "main" ]
      @ List.concat_map
          (fun (c, setup, expect_taken) ->
            let l = "t_" ^ Isa.Cond.name c in
            setup
            @ [ j c l; out (i 0); jmp (l ^ "_end"); label l; out (i 1);
                label (l ^ "_end") ]
            @ [ out (i expect_taken) ])
          [
            (o, [ mov eax (i 0x7FFFFFFF); add eax (i 1) ], 1);
            (no, [ mov eax (i 1); add eax (i 1) ], 1);
            (b, [ mov eax (i 0); sub eax (i 1) ], 1);
            (nb, [ mov eax (i 2); sub eax (i 1) ], 1);
            (z, [ mov eax (i 1); sub eax (i 1) ], 1);
            (nz, [ mov eax (i 2); sub eax (i 1) ], 1);
            (be, [ mov eax (i 1); sub eax (i 1) ], 1);
            (nbe, [ mov eax (i 2); sub eax (i 1) ], 1);
            (s, [ mov eax (i 0); sub eax (i 1) ], 1);
            (ns, [ mov eax (i 2); sub eax (i 1) ], 1);
            (p, [ mov eax (i 3); add eax (i 0) ], 1);   (* 0x3: even parity *)
            (np, [ mov eax (i 1); add eax (i 0) ], 1);  (* 0x1: odd parity *)
            (l, [ mov eax (i (-2)); add eax (i 1) ], 1);
            (nl, [ mov eax (i 2); add eax (i 1) ], 1);
            (le, [ mov eax (i 1); sub eax (i 1) ], 1);
            (nle, [ mov eax (i 3); sub eax (i 1) ], 1);
          ]
      @ [ hlt ])
      (List.concat (List.init 16 (fun _ -> [ 1; 1 ])));
    case_multi "call/ret/call_ind/jmp_ind"
      ~data:[ label "fp"; word32_lbl [ "g" ] ]
      [
        label "main";
        call "f"; out eax;                          (* 10 *)
        ld ecx "fp"; call_ind ecx; out eax;         (* 20 *)
        li edx "tail"; jmp_ind edx;
        out (i 999);                                (* skipped *)
        label "tail"; out (i 30); hlt;
        label "f"; mov eax (i 10); ret;
        label "g"; mov eax (i 20); ret;
      ]
      [ 10; 20; 30 ];
    case_multi "pushf/popf preserve flags"
      [
        label "main";
        mov eax (i (-1)); add eax (i 1);  (* CF=1 ZF=1 *)
        pushf;
        mov ecx (i 1); add ecx (i 1);     (* clobber flags *)
        popf;
        mov eax (i 0); adc eax (i 0);     (* reads restored CF *)
        out eax; hlt;
      ]
      [ 1 ];
    case_multi "in port" [ label "main"; in_ eax; in_ ecx; add eax ecx; out eax; hlt ]
      [ 0 ] (* empty input port reads 0 *);
  ]

let fp_cases =
  [
    case_multi "fld/fst/fmov"
      ~data:[ label "v"; float64 [ 6.25 ]; label "w"; float64 [ 0.0 ] ]
      [
        label "main";
        ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "v")));
        fmov f1 f0;
        ins (fun env -> Isa.Insn.mk_fst (Isa.Operand.mem_abs (env "w")) f1);
        ins (fun env -> Isa.Insn.mk_fld f2 (Isa.Operand.mem_abs (env "w")));
        cvtfi eax f2; out eax; hlt;
      ]
      [ 6 ];
    case_multi "fadd/fsub/fmul/fdiv"
      ~data:[ label "v"; float64 [ 8.0; 2.0 ] ]
      [
        label "main";
        ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "v")));
        ins (fun env -> Isa.Insn.mk_fld f1 (Isa.Operand.mem_abs (env "v" + 8)));
        fadd f0 (fr f1);   (* 10 *)
        fsub f0 (fr f1);   (* 8 *)
        fdiv f0 (fr f1);   (* 4 *)
        fmul f0 (fr f1);   (* 8 *)
        ins (fun env -> Isa.Insn.mk_fadd f0 (Isa.Operand.mem_abs (env "v" + 8)));
        cvtfi eax f0; out eax; hlt;
      ]
      [ 10 ];
    case_multi "fabs/fneg/fsqrt"
      ~data:[ label "v"; float64 [ -9.0 ] ]
      [
        label "main";
        ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "v")));
        fabs f0;           (* 9 *)
        fsqrt f0;          (* 3 *)
        fneg f0;           (* -3 *)
        cvtfi eax f0; out eax; hlt;
      ]
      [ u32 (-3) ];
    case_multi "fcmp orders"
      ~data:[ label "v"; float64 [ 1.5; 2.5 ] ]
      [
        label "main";
        ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "v")));
        ins (fun env -> Isa.Insn.mk_fld f1 (Isa.Operand.mem_abs (env "v" + 8)));
        fcmp f0 (fr f1);
        j b "less"; out (i 0); hlt;
        label "less"; fcmp f1 (fr f0);
        j nbe "greater"; out (i 1); hlt;
        label "greater"; out (i 2); hlt;
      ]
      [ 2 ];
    case_multi "cvtsi negative and cvtfi saturation"
      [
        label "main";
        mov ecx (i (-7));
        cvtsi f0 ecx;
        cvtfi eax f0; out eax;         (* -7 *)
        mov ecx (i 3);
        cvtsi f1 ecx;
        fmul f1 (fr f1);               (* 9 *)
        fmul f1 (fr f1);               (* 81 *)
        cvtfi eax f1; out eax;         (* 81 *)
        hlt;
      ]
      [ u32 (-7); 81 ];
  ]

let () =
  let to_tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "opcodes"
    [
      ("integer", List.map to_tc integer_cases);
      ("control", List.map to_tc control_cases);
      ("floating point", List.map to_tc fp_cases);
    ]
